//! Configuration of the asynchronous LB protocol, and the one conversion
//! that keeps it in lock-step with the analysis-mode [`RefineConfig`].

use super::engine::EngineConfig;
use crate::health::HealthConfig;
use crate::reliable::RetryConfig;
use tempered_core::refine::RefineConfig;
use tempered_core::transfer::TransferConfig;

/// Configuration of the asynchronous protocol.
///
/// The algorithmic knobs mirror [`RefineConfig`] exactly — convert with
/// [`From`] so the two execution modes cannot drift apart; the remaining
/// fields configure the delivery stack, which has no analysis-mode
/// counterpart.
#[derive(Clone, Copy, Debug)]
pub struct LbProtocolConfig {
    /// Independent trials (`n_trials`).
    pub trials: usize,
    /// Iterations per trial (`n_iters`).
    pub iters: usize,
    /// Gossip fanout `f`.
    pub fanout: usize,
    /// Gossip round limit `k`.
    pub rounds: usize,
    /// Transfer-stage knobs (criterion, CMF, ordering, threshold).
    pub transfer: TransferConfig,
    /// Modeled payload bytes per migrated task (commit-stage data volume).
    pub bytes_per_task: usize,
    /// Enable Menon et al.'s negative acknowledgements: recipients bounce
    /// proposed tasks that would push them past `ℓ_ave`. The paper drops
    /// this mechanism (§V-A); the flag exists to measure that choice.
    pub use_nacks: bool,
    /// Delivery hardening. `None` (default) sends best-effort
    /// [`super::LbWire::Raw`] frames — the historical protocol,
    /// bit-identical to builds without the fault layer. `Some` enables
    /// at-least-once delivery with retransmission, dedup, and stage
    /// deadlines.
    pub reliability: Option<RetryConfig>,
    /// Crash-stop fault tolerance. `None` (default) disables heartbeats
    /// and failure detection entirely — no extra traffic, bit-identical
    /// to builds without the health layer. `Some` makes every rank send
    /// periodic heartbeats, run an accrual failure detector, and — on
    /// suspecting a peer — fence it out and restart the protocol on the
    /// surviving ranks (see `lb::engine`'s view-change handling).
    pub health: Option<HealthConfig>,
    /// Partition and gray-failure tolerance, layered over `health`.
    /// `None` (default) keeps the pure crash-stop interpretation of every
    /// failure signal — bit-identical to builds without the partition
    /// layer. `Some` changes three things: retry exhaustion toward a peer
    /// the failure detector still vouches for is treated as a *link*
    /// problem (the message is reinstated instead of the peer declared
    /// dead); protocol restarts and commits are quorum-gated (a minority
    /// component parks read-only instead of committing — split-brain
    /// prevention); and parked ranks knock at the majority until the
    /// partition heals, re-merging under an epoch-fenced view.
    pub partition: Option<PartitionConfig>,
}

/// Knobs of the partition-tolerance layer
/// ([`LbProtocolConfig::partition`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionConfig {
    /// Seconds a quorum-less (parked) rank waits for a heal before it
    /// gives up and finishes read-only on its original placement.
    pub park_deadline: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            // Generous vs. the µs-scale simulated RTT and the default
            // 0.25 s stage deadline: a heal that is coming arrives well
            // before this; one that is not should not stall shutdown.
            park_deadline: 1.0,
        }
    }
}

impl From<RefineConfig> for LbProtocolConfig {
    /// Derive the protocol configuration that runs the *same algorithm*
    /// as `refine(cfg, ...)` distributed: every balancer that can state
    /// its parameters as a [`RefineConfig`] (TemperedLB, GrapevineLB,
    /// and any §V ablation between them) runs through the async protocol
    /// with no separate knob set to keep in sync.
    fn from(cfg: RefineConfig) -> Self {
        LbProtocolConfig {
            trials: cfg.trials,
            iters: cfg.iters,
            fanout: cfg.gossip.fanout,
            rounds: cfg.gossip.rounds,
            transfer: cfg.transfer,
            bytes_per_task: 65_536,
            use_nacks: false,
            reliability: None,
            health: None,
            partition: None,
        }
    }
}

impl Default for LbProtocolConfig {
    fn default() -> Self {
        RefineConfig::tempered().into()
    }
}

impl LbProtocolConfig {
    /// A GrapevineLB-equivalent configuration: single trial, single
    /// iteration, original criterion and CMF, arbitrary ordering.
    pub fn grapevine() -> Self {
        RefineConfig::grapevine().into()
    }

    /// The same configuration with delivery hardening enabled under the
    /// given retry policy.
    pub fn hardened(self, retry: RetryConfig) -> Self {
        LbProtocolConfig {
            reliability: Some(retry),
            ..self
        }
    }

    /// The same configuration with crash-stop fault tolerance enabled:
    /// heartbeats, failure detection, and survivor-set restarts.
    pub fn crash_tolerant(self, health: HealthConfig) -> Self {
        LbProtocolConfig {
            health: Some(health),
            ..self
        }
    }

    /// The same configuration with partition tolerance enabled: link-
    /// suspect attribution, quorum-gated commits, and partition healing.
    /// Requires `health` (the failure detector is what vouches for
    /// peers); callers typically stack
    /// `.hardened(..).crash_tolerant(..).partition_tolerant(..)`.
    pub fn partition_tolerant(self, partition: PartitionConfig) -> Self {
        LbProtocolConfig {
            partition: Some(partition),
            ..self
        }
    }

    /// The engine-layer (algorithmic) slice of this configuration.
    pub fn engine(&self) -> EngineConfig {
        EngineConfig {
            trials: self.trials,
            iters: self.iters,
            fanout: self.fanout,
            rounds: self.rounds,
            transfer: self.transfer,
            use_nacks: self.use_nacks,
            quorum: self.partition.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempered_core::balancer::{GrapevineLb, TemperedLb};

    #[test]
    fn protocol_config_derives_from_refine_config() {
        // Satellite check for knob drift: the default protocol knobs ARE
        // the analysis-mode TemperedLB knobs, via the one conversion.
        let tempered: LbProtocolConfig = TemperedLb::default().refine_config().into();
        let d = LbProtocolConfig::default();
        assert_eq!(tempered.trials, d.trials);
        assert_eq!(tempered.iters, d.iters);
        assert_eq!(tempered.fanout, d.fanout);
        assert_eq!(tempered.rounds, d.rounds);

        let grapevine: LbProtocolConfig = GrapevineLb::default().refine_config().into();
        let g = LbProtocolConfig::grapevine();
        assert_eq!(grapevine.trials, g.trials);
        assert_eq!(grapevine.iters, g.iters);
        assert_eq!((g.trials, g.iters), (1, 1));
    }

    #[test]
    fn engine_slice_carries_the_algorithmic_knobs() {
        let cfg = LbProtocolConfig {
            trials: 3,
            iters: 5,
            fanout: 2,
            rounds: 4,
            use_nacks: true,
            ..LbProtocolConfig::default()
        };
        let e = cfg.engine();
        assert_eq!(e.trials, 3);
        assert_eq!(e.iters, 5);
        assert_eq!(e.fanout, 2);
        assert_eq!(e.rounds, 4);
        assert!(e.use_nacks);
    }

    #[test]
    fn hardened_preserves_other_knobs() {
        let cfg = LbProtocolConfig {
            trials: 4,
            ..LbProtocolConfig::default()
        }
        .hardened(RetryConfig::default());
        assert!(cfg.reliability.is_some());
        assert_eq!(cfg.trials, 4);
    }

    #[test]
    fn partition_tolerance_is_opt_in_and_flips_the_quorum_gate() {
        let base = LbProtocolConfig::default();
        assert!(base.partition.is_none(), "default stays crash-stop");
        assert!(!base.engine().quorum);
        let cfg = base
            .hardened(RetryConfig::default())
            .crash_tolerant(crate::health::HealthConfig::default())
            .partition_tolerant(PartitionConfig::default());
        assert!(cfg.partition.is_some());
        assert!(cfg.engine().quorum);
        assert!(cfg.partition.unwrap().park_deadline > 0.0);
    }
}
