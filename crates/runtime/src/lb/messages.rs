//! Wire messages of the asynchronous LB protocol.
//!
//! Every *basic* (TD-counted) message carries the termination-detection
//! epoch it belongs to, so ranks that have not yet advanced to that epoch
//! can buffer it instead of processing it out of order — the standard
//! epoch-stamping discipline of barrier-free AMT runtimes.

use crate::collective::LoadSummary;
use crate::crc::crc32;
use crate::termination::TdMsg;
use tempered_core::ids::{RankId, TaskId};

/// A migratable task as carried by protocol messages: identity, measured
/// load, and the rank that physically holds its data (its *home* at the
/// start of the LB pass — lazy migration fetches from there at commit
/// time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskEntry {
    /// Stable task identity.
    pub id: TaskId,
    /// Instrumented load (f64 seconds).
    pub load: f64,
    /// Rank holding the task's data since the LB pass began.
    pub home: RankId,
}

/// Transport envelope around [`LbMsg`]: the delivery layer of the
/// hardened protocol.
///
/// With [`super::LbProtocolConfig::reliability`] unset every message
/// travels as [`LbWire::Raw`] — zero overhead, bit-identical to the
/// historical best-effort protocol. With a [`crate::reliable::RetryConfig`]
/// installed, protocol messages travel as [`LbWire::Data`] with a
/// per-link sequence number and are acknowledged / retransmitted /
/// deduplicated by a [`crate::reliable::ReliableChannel`]; the two timer
/// variants are scheduled by a rank *to itself* via
/// [`crate::sim::Ctx::schedule`] and never cross the network.
#[derive(Clone, Debug, PartialEq)]
pub enum LbWire {
    /// Best-effort transmission (legacy mode; no delivery guarantee).
    Raw(LbMsg),
    /// Reliable transmission: retransmitted until acknowledged,
    /// deduplicated by `seq` at the receiver.
    Data {
        /// Per-(sender → receiver) sequence number, starting at 1.
        seq: u64,
        /// The protocol payload.
        msg: LbMsg,
    },
    /// Acknowledgement for a [`LbWire::Data`] with the same `seq`
    /// (best-effort; a lost ack merely causes a redundant resend).
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Self-timer: check whether `(to, seq)` is still unacknowledged
    /// and retransmit or give up.
    RetryTimer {
        /// Destination of the pending message.
        to: RankId,
        /// Its sequence number.
        seq: u64,
    },
    /// Self-timer: if the rank's stage-transition counter still equals
    /// `stage_seq` when this fires, the stage has made no progress for a
    /// full deadline and the rank degrades.
    StageTimer {
        /// Value of the stage counter when the timer was armed.
        stage_seq: u64,
    },
    /// Liveness beacon for the heartbeat failure detector
    /// ([`crate::health::HealthDetector`]). Deliberately *outside* the
    /// reliable layer: heartbeats are periodic and self-correcting, so
    /// retransmitting a lost one is pointless — and a crashed receiver
    /// must not burn the sender's retry budget.
    Heartbeat,
    /// Self-timer driving the heartbeat send period and the failure
    /// detector's poll.
    HeartbeatTimer,
    /// Self-timer: if the rank is still parked (quorum-less after a
    /// partition) with park counter `park_seq` when this fires, the heal
    /// never came — the rank finishes read-only on its original
    /// placement instead of waiting forever.
    ParkTimer {
        /// Value of the park counter when the timer was armed.
        park_seq: u64,
    },
    /// A frame whose bits were corrupted in flight ([`LinkFaultKind::
    /// Corrupt`](crate::fault::LinkFaultKind)): the canonical encoding of
    /// the original frame with at least one bit flipped, plus the CRC32
    /// the sender computed over the *un*-corrupted bytes. Receivers
    /// recompute the checksum and drop the frame on mismatch; the
    /// reliable layer then re-delivers, exactly as for a loss.
    Damaged {
        /// CRC32 ([`crate::crc::crc32`]) of the frame as sent.
        crc: u32,
        /// The frame bytes as received (corrupted).
        bytes: Vec<u8>,
    },
}

/// Wire overhead of the reliable framing (sequence number + tag),
/// added to [`LbMsg::wire_bytes`] for [`LbWire::Data`] transmissions.
pub const SEQ_OVERHEAD_BYTES: usize = 12;

impl LbWire {
    /// Modeled wire size. Timers never cross the network and cost 0.
    pub fn wire_bytes(&self) -> usize {
        match self {
            LbWire::Raw(m) => m.wire_bytes(),
            LbWire::Data { msg, .. } => msg.wire_bytes() + SEQ_OVERHEAD_BYTES,
            LbWire::Ack { .. } => SEQ_OVERHEAD_BYTES,
            LbWire::Heartbeat => 8,
            // A damaged frame occupies the same bandwidth as the original.
            LbWire::Damaged { bytes, .. } => bytes.len(),
            LbWire::RetryTimer { .. }
            | LbWire::StageTimer { .. }
            | LbWire::HeartbeatTimer
            | LbWire::ParkTimer { .. } => 0,
        }
    }

    /// Canonical byte encoding of a frame: the integrity-checked unit the
    /// CRC32 covers. This is a modeling device, not an interop format —
    /// it only has to be deterministic and injective enough that any
    /// single flipped bit changes the checksum (CRC32 detects all
    /// single-bit errors), which the corruption fault model relies on.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        self.encode_into(&mut b);
        b
    }

    /// [`LbWire::encode`] into a caller-owned buffer: appends the frame
    /// bytes without clearing, so framing layers can lay headers and
    /// payload into one allocation (see the socket driver's
    /// `encode_frame`) and hot loops can reuse a scratch buffer.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        fn u32le(b: &mut Vec<u8>, v: u32) {
            b.extend_from_slice(&v.to_le_bytes());
        }
        fn u64le(b: &mut Vec<u8>, v: u64) {
            b.extend_from_slice(&v.to_le_bytes());
        }
        fn f64le(b: &mut Vec<u8>, v: f64) {
            u64le(b, v.to_bits());
        }
        fn summary(b: &mut Vec<u8>, s: &LoadSummary) {
            f64le(b, s.total);
            f64le(b, s.max);
            u64le(b, s.count);
        }
        fn msg(b: &mut Vec<u8>, m: &LbMsg) {
            match m {
                LbMsg::ReduceUp { slot, summary: s } => {
                    b.push(0);
                    u32le(b, *slot);
                    summary(b, s);
                }
                LbMsg::ReduceDown { slot, summary: s } => {
                    b.push(1);
                    u32le(b, *slot);
                    summary(b, s);
                }
                LbMsg::Gossip {
                    epoch,
                    round,
                    pairs,
                } => {
                    b.push(2);
                    u64le(b, *epoch);
                    u32le(b, *round);
                    u32le(b, pairs.len() as u32);
                    for (r, load) in pairs.iter() {
                        u32le(b, r.as_u32());
                        f64le(b, *load);
                    }
                }
                LbMsg::Propose { epoch, tasks }
                | LbMsg::ProposeReply {
                    epoch,
                    rejected: tasks,
                } => {
                    b.push(if matches!(m, LbMsg::Propose { .. }) {
                        3
                    } else {
                        4
                    });
                    u64le(b, *epoch);
                    u32le(b, tasks.len() as u32);
                    for t in tasks {
                        u64le(b, t.id.as_u64());
                        f64le(b, t.load);
                        u32le(b, t.home.as_u32());
                    }
                }
                LbMsg::Fetch { epoch, tasks } | LbMsg::TaskData { epoch, tasks } => {
                    b.push(if matches!(m, LbMsg::Fetch { .. }) {
                        5
                    } else {
                        6
                    });
                    u64le(b, *epoch);
                    u32le(b, tasks.len() as u32);
                    for t in tasks {
                        u64le(b, t.as_u64());
                    }
                }
                LbMsg::View { base, dead } => {
                    b.push(7);
                    u64le(b, *base);
                    u32le(b, dead.len() as u32);
                    for r in dead {
                        u32le(b, r.as_u32());
                    }
                }
                LbMsg::Knock => b.push(8),
                LbMsg::Heal { base, dead } => {
                    b.push(9);
                    u64le(b, *base);
                    u32le(b, dead.len() as u32);
                    for r in dead {
                        u32le(b, r.as_u32());
                    }
                }
                LbMsg::Td(TdMsg::Token {
                    epoch,
                    wave,
                    sent,
                    recv,
                }) => {
                    b.push(10);
                    u64le(b, *epoch);
                    u64le(b, *wave);
                    u64le(b, *sent);
                    u64le(b, *recv);
                }
                LbMsg::Td(TdMsg::Terminated { epoch, sent }) => {
                    b.push(11);
                    u64le(b, *epoch);
                    u64le(b, *sent);
                }
            }
        }
        match self {
            LbWire::Raw(m) => {
                b.push(0x20);
                msg(b, m);
            }
            LbWire::Data { seq, msg: m } => {
                b.push(0x21);
                u64le(b, *seq);
                msg(b, m);
            }
            LbWire::Ack { seq } => {
                b.push(0x22);
                u64le(b, *seq);
            }
            LbWire::Heartbeat => b.push(0x23),
            LbWire::Damaged { crc, bytes } => {
                b.push(0x24);
                u32le(b, *crc);
                b.extend_from_slice(bytes);
            }
            LbWire::RetryTimer { to, seq } => {
                b.push(0x25);
                u32le(b, to.as_u32());
                u64le(b, *seq);
            }
            LbWire::StageTimer { stage_seq } => {
                b.push(0x26);
                u64le(b, *stage_seq);
            }
            LbWire::HeartbeatTimer => b.push(0x27),
            LbWire::ParkTimer { park_seq } => {
                b.push(0x28);
                u64le(b, *park_seq);
            }
        }
    }

    /// Decode a frame from its canonical encoding — the exact inverse of
    /// [`LbWire::encode`]. The in-process executors never need this (they
    /// pass `LbWire` values by move), but the TCP socket driver
    /// ([`crate::lb::socket`]) ships the canonical bytes across real
    /// streams and reconstructs the frame on the receiving side.
    ///
    /// Every byte must be consumed: trailing garbage is a framing bug
    /// upstream and is reported, not ignored.
    pub fn decode(bytes: &[u8]) -> Result<LbWire, WireDecodeError> {
        let mut cur = Cursor {
            bytes,
            pos: 0,
            what: "frame",
        };
        let wire = cur.wire()?;
        if cur.pos != bytes.len() {
            return Err(WireDecodeError {
                what: "frame",
                offset: cur.pos,
                kind: WireDecodeErrorKind::TrailingBytes(bytes.len() - cur.pos),
            });
        }
        Ok(wire)
    }

    /// CRC32 over the canonical encoding.
    pub fn checksum(&self) -> u32 {
        crc32(&self.encode())
    }

    /// The frame as it arrives after in-flight corruption: its canonical
    /// bytes with one deterministically chosen bit flipped, paired with
    /// the checksum of the *original* bytes. Verification at the receiver
    /// is guaranteed to fail (CRC32 detects every single-bit error).
    pub fn damaged(&self) -> LbWire {
        let bytes = self.encode();
        let crc = crc32(&bytes);
        let mut bytes = bytes;
        // Derive the flipped position from the checksum: deterministic
        // under a seed (the frame contents are), varied across frames.
        let bit = crc as usize % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        LbWire::Damaged { crc, bytes }
    }

    /// Receiver-side integrity check for a [`LbWire::Damaged`] frame:
    /// `true` when the stored checksum matches the received bytes. Other
    /// frames trivially verify (the model only wraps frames in `Damaged`
    /// when corruption actually struck).
    pub fn verify(&self) -> bool {
        match self {
            LbWire::Damaged { crc, bytes } => crc32(bytes) == *crc,
            _ => true,
        }
    }
}

/// A malformed canonical frame encoding (see [`LbWire::decode`]).
///
/// Carries enough context to name the offending spot: what was being
/// decoded, the byte offset where decoding failed, and the failure kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDecodeError {
    /// What was being decoded when the error struck ("frame", "gossip
    /// pair", ...).
    pub what: &'static str,
    /// Byte offset into the frame at which the error was detected.
    pub offset: usize,
    /// The failure itself.
    pub kind: WireDecodeErrorKind,
}

/// The ways a canonical frame encoding can be malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireDecodeErrorKind {
    /// The frame ended before the field could be read.
    Truncated,
    /// An unknown frame or message tag byte.
    BadTag(u8),
    /// Bytes left over after a complete frame was decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            WireDecodeErrorKind::Truncated => {
                write!(f, "truncated {} at byte {}", self.what, self.offset)
            }
            WireDecodeErrorKind::BadTag(tag) => write!(
                f,
                "unknown {} tag {tag:#04x} at byte {}",
                self.what, self.offset
            ),
            WireDecodeErrorKind::TrailingBytes(n) => write!(
                f,
                "{n} trailing byte(s) after {} ending at byte {}",
                self.what, self.offset
            ),
        }
    }
}

impl std::error::Error for WireDecodeError {}

/// Byte-reader over a frame, tracking position for error context.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl Cursor<'_> {
    fn fail(&self, kind: WireDecodeErrorKind) -> WireDecodeError {
        WireDecodeError {
            what: self.what,
            offset: self.pos,
            kind,
        }
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireDecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.fail(WireDecodeErrorKind::Truncated));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireDecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn rank(&mut self) -> Result<RankId, WireDecodeError> {
        Ok(RankId::new(self.u32()?))
    }

    /// Length prefix for a repeated field. Bounded by the bytes actually
    /// remaining (each element is at least one byte), so a corrupt length
    /// cannot provoke a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, WireDecodeError> {
        let n = self.u32()? as usize;
        if n * min_elem_bytes > self.bytes.len() - self.pos {
            return Err(self.fail(WireDecodeErrorKind::Truncated));
        }
        Ok(n)
    }

    fn summary(&mut self) -> Result<LoadSummary, WireDecodeError> {
        Ok(LoadSummary {
            total: self.f64()?,
            max: self.f64()?,
            count: self.u64()?,
        })
    }

    fn task_entries(&mut self) -> Result<Vec<TaskEntry>, WireDecodeError> {
        let n = self.len(20)?;
        (0..n)
            .map(|_| {
                Ok(TaskEntry {
                    id: TaskId::new(self.u64()?),
                    load: self.f64()?,
                    home: self.rank()?,
                })
            })
            .collect()
    }

    fn task_ids(&mut self) -> Result<Vec<TaskId>, WireDecodeError> {
        let n = self.len(8)?;
        (0..n).map(|_| Ok(TaskId::new(self.u64()?))).collect()
    }

    fn ranks(&mut self) -> Result<Vec<RankId>, WireDecodeError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.rank()).collect()
    }

    fn msg(&mut self) -> Result<LbMsg, WireDecodeError> {
        self.what = "message";
        let tag = self.u8()?;
        Ok(match tag {
            0 => LbMsg::ReduceUp {
                slot: self.u32()?,
                summary: self.summary()?,
            },
            1 => LbMsg::ReduceDown {
                slot: self.u32()?,
                summary: self.summary()?,
            },
            2 => {
                let epoch = self.u64()?;
                let round = self.u32()?;
                let n = self.len(12)?;
                let pairs = (0..n)
                    .map(|_| Ok((self.rank()?, self.f64()?)))
                    .collect::<Result<_, _>>()?;
                LbMsg::Gossip {
                    epoch,
                    round,
                    pairs,
                }
            }
            3 => LbMsg::Propose {
                epoch: self.u64()?,
                tasks: self.task_entries()?,
            },
            4 => LbMsg::ProposeReply {
                epoch: self.u64()?,
                rejected: self.task_entries()?,
            },
            5 => LbMsg::Fetch {
                epoch: self.u64()?,
                tasks: self.task_ids()?,
            },
            6 => LbMsg::TaskData {
                epoch: self.u64()?,
                tasks: self.task_ids()?,
            },
            7 => LbMsg::View {
                base: self.u64()?,
                dead: self.ranks()?,
            },
            8 => LbMsg::Knock,
            9 => LbMsg::Heal {
                base: self.u64()?,
                dead: self.ranks()?,
            },
            10 => LbMsg::Td(TdMsg::Token {
                epoch: self.u64()?,
                wave: self.u64()?,
                sent: self.u64()?,
                recv: self.u64()?,
            }),
            11 => LbMsg::Td(TdMsg::Terminated {
                epoch: self.u64()?,
                sent: self.u64()?,
            }),
            other => {
                self.pos -= 1;
                return Err(self.fail(WireDecodeErrorKind::BadTag(other)));
            }
        })
    }

    fn wire(&mut self) -> Result<LbWire, WireDecodeError> {
        let tag = self.u8()?;
        Ok(match tag {
            0x20 => LbWire::Raw(self.msg()?),
            0x21 => LbWire::Data {
                seq: self.u64()?,
                msg: self.msg()?,
            },
            0x22 => LbWire::Ack { seq: self.u64()? },
            0x23 => LbWire::Heartbeat,
            0x24 => {
                let crc = self.u32()?;
                let bytes = self.bytes[self.pos..].to_vec();
                self.pos = self.bytes.len();
                LbWire::Damaged { crc, bytes }
            }
            0x25 => LbWire::RetryTimer {
                to: self.rank()?,
                seq: self.u64()?,
            },
            0x26 => LbWire::StageTimer {
                stage_seq: self.u64()?,
            },
            0x27 => LbWire::HeartbeatTimer,
            0x28 => LbWire::ParkTimer {
                park_seq: self.u64()?,
            },
            other => {
                self.pos -= 1;
                return Err(self.fail(WireDecodeErrorKind::BadTag(other)));
            }
        })
    }
}

/// Protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum LbMsg {
    /// Reduction partial flowing child → parent for collective `slot`.
    ReduceUp {
        /// Collective slot: 0 is the initial load allreduce; slot
        /// `1 + trial·n_iters + iter` evaluates that iteration's proposal.
        slot: u32,
        /// Accumulated partial.
        summary: LoadSummary,
    },
    /// Reduction result broadcast root → leaves for collective `slot`.
    ReduceDown {
        /// Collective slot (see [`LbMsg::ReduceUp`]).
        slot: u32,
        /// Final reduced value.
        summary: LoadSummary,
    },
    /// Epidemic knowledge propagation (Algorithm 1).
    Gossip {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Message round `r`.
        round: u32,
        /// `(rank, load)` pairs — the sender's `S` and `LOAD()` snapshot.
        /// Shared (`Arc`) because one snapshot fans out to several gossip
        /// targets and into the retransmission buffer: cloning the frame
        /// must not copy the pair list.
        pairs: std::sync::Arc<[(RankId, f64)]>,
    },
    /// Proposed (lazy) transfers: the recipient becomes the logical owner
    /// for subsequent iterations without any data movement.
    Propose {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Tasks now logically owned by the receiver.
        tasks: Vec<TaskEntry>,
    },
    /// Negative acknowledgement (optional, [`super::LbProtocolConfig::use_nacks`]):
    /// tasks the recipient refused because accepting them would push it
    /// past the average load — Menon et al.'s original mechanism, which
    /// the paper deliberately drops (§V-A). Returned tasks revert to the
    /// sender.
    ProposeReply {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Tasks bounced back to the proposer.
        rejected: Vec<TaskEntry>,
    },
    /// Commit stage: the final owner requests task data from the home
    /// rank.
    Fetch {
        /// TD epoch (the commit epoch).
        epoch: u64,
        /// Task ids to ship.
        tasks: Vec<TaskId>,
    },
    /// Commit stage: task payloads shipped home → final owner.
    TaskData {
        /// TD epoch (the commit epoch).
        epoch: u64,
        /// Task ids delivered.
        tasks: Vec<TaskId>,
    },
    /// Membership view-change propagation: the sender's full
    /// `(base, dead)` view. Control traffic (never TD-counted, never
    /// buffered): a receiver merges it via
    /// [`crate::membership::View::merge_full`] and, if its view changed,
    /// restarts its protocol on the survivors (or parks, if the quorum
    /// gate is on and the live component lost its majority) and
    /// re-broadcasts — a convergent flood, since merge_full is
    /// order-insensitive.
    View {
        /// The sender's heal-fence base generation (0 until the first
        /// partition heal; see [`crate::membership::View::base_gen`]).
        base: u64,
        /// Every rank the sender's view has declared dead.
        dead: Vec<RankId>,
    },
    /// Beacon a *parked* (quorum-less) rank sends to ranks it has fenced
    /// off: "I am alive and reachable — if you fenced me because of a
    /// partition, it has healed." Control traffic, best-effort; the
    /// receiving side's leader answers with a healed [`LbMsg::View`]
    /// (mid-run) or a [`LbMsg::Heal`] offer (post-commit).
    Knock,
    /// Post-commit heal offer: the majority component finished its run
    /// and its leader hands the parked rank the healed `(base, dead)`
    /// view so it can stand down read-only in agreement with the
    /// majority's committed outcome.
    Heal {
        /// Healed base generation (dominates every pre-heal generation).
        base: u64,
        /// Dead set of the healed view.
        dead: Vec<RankId>,
    },
    /// Termination-detection control traffic.
    Td(TdMsg),
}

impl LbMsg {
    /// The TD epoch a *basic* message belongs to; `None` for control and
    /// collective messages, which are never TD-counted or buffered.
    pub fn basic_epoch(&self) -> Option<u64> {
        match self {
            LbMsg::Gossip { epoch, .. }
            | LbMsg::Propose { epoch, .. }
            | LbMsg::ProposeReply { epoch, .. }
            | LbMsg::Fetch { epoch, .. }
            | LbMsg::TaskData { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }

    /// Modeled wire size in bytes, used by the executors' latency model
    /// and network accounting. Task *data* payloads are modeled via
    /// `bytes_per_task` at the send site, not here.
    pub fn wire_bytes(&self) -> usize {
        match self {
            LbMsg::ReduceUp { .. } | LbMsg::ReduceDown { .. } => 32,
            LbMsg::Gossip { pairs, .. } => 16 + 12 * pairs.len(),
            LbMsg::Propose { tasks, .. } => 16 + 20 * tasks.len(),
            LbMsg::ProposeReply { rejected, .. } => 16 + 20 * rejected.len(),
            LbMsg::Fetch { tasks, .. } => 16 + 8 * tasks.len(),
            LbMsg::TaskData { tasks, .. } => 16 + 8 * tasks.len(),
            // The heal-fence base rides inside the existing 8-byte view
            // header: keeping the modeled size unchanged keeps crash-stop
            // runs (base always 0) bit-identical to the pre-heal protocol.
            LbMsg::View { dead, .. } => 8 + 4 * dead.len(),
            LbMsg::Knock => 8,
            LbMsg::Heal { dead, .. } => 16 + 4 * dead.len(),
            LbMsg::Td(_) => crate::termination::TD_MSG_BYTES,
        }
    }
}

/// Full modeled cost of a protocol message: wire framing plus the
/// commit-stage task-data payload (`bytes_per_task` per shipped task).
/// Transports use this so retransmissions recompute the same cost as the
/// original transmission.
pub fn payload_bytes(msg: &LbMsg, bytes_per_task: usize) -> usize {
    let extra = match msg {
        LbMsg::TaskData { tasks, .. } => bytes_per_task * tasks.len(),
        _ => 0,
    };
    msg.wire_bytes() + extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_epoch_classification() {
        assert_eq!(
            LbMsg::Gossip {
                epoch: 3,
                round: 1,
                pairs: vec![].into()
            }
            .basic_epoch(),
            Some(3)
        );
        assert_eq!(
            LbMsg::Propose {
                epoch: 7,
                tasks: vec![]
            }
            .basic_epoch(),
            Some(7)
        );
        assert_eq!(
            LbMsg::ReduceUp {
                slot: 0,
                summary: LoadSummary::default()
            }
            .basic_epoch(),
            None
        );
        assert_eq!(
            LbMsg::Td(TdMsg::Terminated { epoch: 1, sent: 0 }).basic_epoch(),
            None
        );
    }

    #[test]
    fn wire_framing_overhead() {
        let inner = LbMsg::Fetch {
            epoch: 2,
            tasks: vec![TaskId::new(1), TaskId::new(2)],
        };
        let raw = LbWire::Raw(inner.clone()).wire_bytes();
        let framed = LbWire::Data { seq: 9, msg: inner }.wire_bytes();
        assert_eq!(raw + SEQ_OVERHEAD_BYTES, framed);
        assert_eq!(LbWire::Ack { seq: 9 }.wire_bytes(), SEQ_OVERHEAD_BYTES);
        assert_eq!(
            LbWire::RetryTimer {
                to: RankId::new(0),
                seq: 1
            }
            .wire_bytes(),
            0
        );
        assert_eq!(LbWire::StageTimer { stage_seq: 3 }.wire_bytes(), 0);
        assert_eq!(LbWire::HeartbeatTimer.wire_bytes(), 0);
        assert_eq!(LbWire::ParkTimer { park_seq: 1 }.wire_bytes(), 0);
        assert!(
            LbWire::Heartbeat.wire_bytes() > 0,
            "heartbeats cross the wire"
        );
    }

    #[test]
    fn view_changes_are_control_traffic() {
        let msg = LbMsg::View {
            base: 0,
            dead: vec![RankId::new(3), RankId::new(5)],
        };
        assert_eq!(msg.basic_epoch(), None, "views must never be TD-counted");
        assert!(
            msg.wire_bytes()
                > LbMsg::View {
                    base: 0,
                    dead: vec![]
                }
                .wire_bytes()
        );
        assert_eq!(LbMsg::Knock.basic_epoch(), None);
        assert_eq!(
            LbMsg::Heal {
                base: 9,
                dead: vec![]
            }
            .basic_epoch(),
            None
        );
    }

    #[test]
    fn encoding_is_deterministic_and_distinguishes_frames() {
        let a = LbWire::Data {
            seq: 4,
            msg: LbMsg::Gossip {
                epoch: 1,
                round: 2,
                pairs: vec![(RankId::new(3), 0.5)].into(),
            },
        };
        assert_eq!(a.encode(), a.encode());
        assert_eq!(a.checksum(), a.checksum());
        let b = LbWire::Data {
            seq: 5,
            msg: LbMsg::Gossip {
                epoch: 1,
                round: 2,
                pairs: vec![(RankId::new(3), 0.5)].into(),
            },
        };
        assert_ne!(a.checksum(), b.checksum(), "seq is covered by the crc");
    }

    #[test]
    fn single_flipped_bit_fails_verification() {
        let frames = [
            LbWire::Raw(LbMsg::View {
                base: 7,
                dead: vec![RankId::new(1)],
            }),
            LbWire::Data {
                seq: 12,
                msg: LbMsg::Propose {
                    epoch: 3,
                    tasks: vec![TaskEntry {
                        id: TaskId::new(9),
                        load: 1.25,
                        home: RankId::new(2),
                    }],
                },
            },
            LbWire::Ack { seq: 1 },
            LbWire::Heartbeat,
        ];
        for frame in frames {
            assert!(frame.verify(), "intact frames verify");
            let dam = frame.damaged();
            assert!(!dam.verify(), "one flipped bit must fail the crc");
            let LbWire::Damaged { bytes, .. } = &dam else {
                panic!("damaged() wraps in Damaged");
            };
            assert_eq!(
                bytes.len(),
                frame.encode().len(),
                "corruption flips bits, it does not truncate"
            );
            assert_eq!(dam.wire_bytes(), bytes.len());
        }
    }

    #[test]
    fn every_flipped_bit_position_is_caught() {
        // Exhaustive over a small frame: whichever bit the model flips,
        // the receiver-side check must catch it.
        let frame = LbWire::Raw(LbMsg::Knock);
        let bytes = frame.encode();
        let crc = frame.checksum();
        for bit in 0..bytes.len() * 8 {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let dam = LbWire::Damaged {
                crc,
                bytes: corrupted,
            };
            assert!(!dam.verify(), "bit {bit} slipped through");
        }
    }

    /// One frame of every variant, exercising every field shape.
    fn exhaustive_frames() -> Vec<LbWire> {
        let entries = vec![
            TaskEntry {
                id: TaskId::new(9),
                load: 1.25,
                home: RankId::new(2),
            },
            TaskEntry {
                id: TaskId::new(u64::MAX),
                load: -0.0,
                home: RankId::new(u32::MAX),
            },
        ];
        let msgs = vec![
            LbMsg::ReduceUp {
                slot: 3,
                summary: LoadSummary {
                    total: 7.5,
                    max: 2.5,
                    count: 4,
                },
            },
            LbMsg::ReduceDown {
                slot: 0,
                summary: LoadSummary::default(),
            },
            LbMsg::Gossip {
                epoch: 1,
                round: 2,
                pairs: vec![(RankId::new(3), 0.5), (RankId::new(0), f64::INFINITY)].into(),
            },
            LbMsg::Propose {
                epoch: 3,
                tasks: entries.clone(),
            },
            LbMsg::ProposeReply {
                epoch: 4,
                rejected: entries,
            },
            LbMsg::Fetch {
                epoch: 5,
                tasks: vec![TaskId::new(1), TaskId::new(2)],
            },
            LbMsg::TaskData {
                epoch: 6,
                tasks: vec![],
            },
            LbMsg::View {
                base: 7,
                dead: vec![RankId::new(1), RankId::new(30)],
            },
            LbMsg::Knock,
            LbMsg::Heal {
                base: 9,
                dead: vec![],
            },
            LbMsg::Td(TdMsg::Token {
                epoch: 1,
                wave: 2,
                sent: 3,
                recv: 4,
            }),
            LbMsg::Td(TdMsg::Terminated { epoch: 2, sent: 9 }),
        ];
        let mut frames = vec![
            LbWire::Ack { seq: 17 },
            LbWire::Heartbeat,
            LbWire::RetryTimer {
                to: RankId::new(4),
                seq: 8,
            },
            LbWire::StageTimer { stage_seq: 11 },
            LbWire::HeartbeatTimer,
            LbWire::ParkTimer { park_seq: 5 },
            LbWire::Raw(LbMsg::Knock).damaged(),
        ];
        for m in msgs {
            frames.push(LbWire::Raw(m.clone()));
            frames.push(LbWire::Data { seq: 42, msg: m });
        }
        frames
    }

    #[test]
    fn decode_inverts_encode_for_every_variant() {
        for frame in exhaustive_frames() {
            let bytes = frame.encode();
            let back = LbWire::decode(&bytes).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
            assert_eq!(
                back.encode(),
                bytes,
                "decode∘encode must be the identity on canonical bytes ({frame:?})"
            );
        }
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        for frame in exhaustive_frames() {
            // A Damaged frame's tail is variable-length by design (the
            // corrupted bytes run to the end of the frame), so a prefix
            // of one is itself a well-formed Damaged frame — its
            // integrity failure is caught by `verify`, not by framing.
            if matches!(frame, LbWire::Damaged { .. }) {
                continue;
            }
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                let err = LbWire::decode(&bytes[..cut])
                    .expect_err("a strict prefix of a frame must not decode");
                assert!(
                    err.offset <= cut,
                    "error offset {} past the {cut}-byte prefix",
                    err.offset
                );
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut bytes = LbWire::Heartbeat.encode();
        bytes.push(0xFF);
        let err = LbWire::decode(&bytes).unwrap_err();
        assert_eq!(err.kind, WireDecodeErrorKind::TrailingBytes(1));

        let err = LbWire::decode(&[0x7F]).unwrap_err();
        assert_eq!(err.kind, WireDecodeErrorKind::BadTag(0x7F));
        assert_eq!(err.offset, 0);

        // Unknown *message* tag inside a Raw envelope.
        let err = LbWire::decode(&[0x20, 0xEE]).unwrap_err();
        assert_eq!(err.kind, WireDecodeErrorKind::BadTag(0xEE));
        assert_eq!(err.offset, 1);
        assert!(err.to_string().contains("0xee"), "{err}");
    }

    #[test]
    fn decode_bounds_length_prefixes_by_remaining_bytes() {
        // A Gossip claiming 2^31 pairs with a 0-byte body must fail as
        // truncated without attempting the allocation.
        let mut bytes = vec![0x20, 2]; // Raw + Gossip tag
        bytes.extend_from_slice(&1u64.to_le_bytes()); // epoch
        bytes.extend_from_slice(&0u32.to_le_bytes()); // round
        bytes.extend_from_slice(&0x8000_0000u32.to_le_bytes()); // pair count
        let err = LbWire::decode(&bytes).unwrap_err();
        assert_eq!(err.kind, WireDecodeErrorKind::Truncated);
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = LbMsg::Gossip {
            epoch: 0,
            round: 0,
            pairs: vec![].into(),
        };
        let big = LbMsg::Gossip {
            epoch: 0,
            round: 0,
            pairs: vec![(RankId::new(0), 1.0); 100].into(),
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        assert_eq!(big.wire_bytes() - small.wire_bytes(), 1200);
    }
}
