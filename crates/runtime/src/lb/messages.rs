//! Wire messages of the asynchronous LB protocol.
//!
//! Every *basic* (TD-counted) message carries the termination-detection
//! epoch it belongs to, so ranks that have not yet advanced to that epoch
//! can buffer it instead of processing it out of order — the standard
//! epoch-stamping discipline of barrier-free AMT runtimes.

use crate::collective::LoadSummary;
use crate::crc::crc32;
use crate::termination::TdMsg;
use tempered_core::ids::{RankId, TaskId};

/// A migratable task as carried by protocol messages: identity, measured
/// load, and the rank that physically holds its data (its *home* at the
/// start of the LB pass — lazy migration fetches from there at commit
/// time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskEntry {
    /// Stable task identity.
    pub id: TaskId,
    /// Instrumented load (f64 seconds).
    pub load: f64,
    /// Rank holding the task's data since the LB pass began.
    pub home: RankId,
}

/// Transport envelope around [`LbMsg`]: the delivery layer of the
/// hardened protocol.
///
/// With [`super::LbProtocolConfig::reliability`] unset every message
/// travels as [`LbWire::Raw`] — zero overhead, bit-identical to the
/// historical best-effort protocol. With a [`crate::reliable::RetryConfig`]
/// installed, protocol messages travel as [`LbWire::Data`] with a
/// per-link sequence number and are acknowledged / retransmitted /
/// deduplicated by a [`crate::reliable::ReliableChannel`]; the two timer
/// variants are scheduled by a rank *to itself* via
/// [`crate::sim::Ctx::schedule`] and never cross the network.
#[derive(Clone, Debug)]
pub enum LbWire {
    /// Best-effort transmission (legacy mode; no delivery guarantee).
    Raw(LbMsg),
    /// Reliable transmission: retransmitted until acknowledged,
    /// deduplicated by `seq` at the receiver.
    Data {
        /// Per-(sender → receiver) sequence number, starting at 1.
        seq: u64,
        /// The protocol payload.
        msg: LbMsg,
    },
    /// Acknowledgement for a [`LbWire::Data`] with the same `seq`
    /// (best-effort; a lost ack merely causes a redundant resend).
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Self-timer: check whether `(to, seq)` is still unacknowledged
    /// and retransmit or give up.
    RetryTimer {
        /// Destination of the pending message.
        to: RankId,
        /// Its sequence number.
        seq: u64,
    },
    /// Self-timer: if the rank's stage-transition counter still equals
    /// `stage_seq` when this fires, the stage has made no progress for a
    /// full deadline and the rank degrades.
    StageTimer {
        /// Value of the stage counter when the timer was armed.
        stage_seq: u64,
    },
    /// Liveness beacon for the heartbeat failure detector
    /// ([`crate::health::HealthDetector`]). Deliberately *outside* the
    /// reliable layer: heartbeats are periodic and self-correcting, so
    /// retransmitting a lost one is pointless — and a crashed receiver
    /// must not burn the sender's retry budget.
    Heartbeat,
    /// Self-timer driving the heartbeat send period and the failure
    /// detector's poll.
    HeartbeatTimer,
    /// Self-timer: if the rank is still parked (quorum-less after a
    /// partition) with park counter `park_seq` when this fires, the heal
    /// never came — the rank finishes read-only on its original
    /// placement instead of waiting forever.
    ParkTimer {
        /// Value of the park counter when the timer was armed.
        park_seq: u64,
    },
    /// A frame whose bits were corrupted in flight ([`LinkFaultKind::
    /// Corrupt`](crate::fault::LinkFaultKind)): the canonical encoding of
    /// the original frame with at least one bit flipped, plus the CRC32
    /// the sender computed over the *un*-corrupted bytes. Receivers
    /// recompute the checksum and drop the frame on mismatch; the
    /// reliable layer then re-delivers, exactly as for a loss.
    Damaged {
        /// CRC32 ([`crate::crc::crc32`]) of the frame as sent.
        crc: u32,
        /// The frame bytes as received (corrupted).
        bytes: Vec<u8>,
    },
}

/// Wire overhead of the reliable framing (sequence number + tag),
/// added to [`LbMsg::wire_bytes`] for [`LbWire::Data`] transmissions.
pub const SEQ_OVERHEAD_BYTES: usize = 12;

impl LbWire {
    /// Modeled wire size. Timers never cross the network and cost 0.
    pub fn wire_bytes(&self) -> usize {
        match self {
            LbWire::Raw(m) => m.wire_bytes(),
            LbWire::Data { msg, .. } => msg.wire_bytes() + SEQ_OVERHEAD_BYTES,
            LbWire::Ack { .. } => SEQ_OVERHEAD_BYTES,
            LbWire::Heartbeat => 8,
            // A damaged frame occupies the same bandwidth as the original.
            LbWire::Damaged { bytes, .. } => bytes.len(),
            LbWire::RetryTimer { .. }
            | LbWire::StageTimer { .. }
            | LbWire::HeartbeatTimer
            | LbWire::ParkTimer { .. } => 0,
        }
    }

    /// Canonical byte encoding of a frame: the integrity-checked unit the
    /// CRC32 covers. This is a modeling device, not an interop format —
    /// it only has to be deterministic and injective enough that any
    /// single flipped bit changes the checksum (CRC32 detects all
    /// single-bit errors), which the corruption fault model relies on.
    pub fn encode(&self) -> Vec<u8> {
        fn u32le(b: &mut Vec<u8>, v: u32) {
            b.extend_from_slice(&v.to_le_bytes());
        }
        fn u64le(b: &mut Vec<u8>, v: u64) {
            b.extend_from_slice(&v.to_le_bytes());
        }
        fn f64le(b: &mut Vec<u8>, v: f64) {
            u64le(b, v.to_bits());
        }
        fn summary(b: &mut Vec<u8>, s: &LoadSummary) {
            f64le(b, s.total);
            f64le(b, s.max);
            u64le(b, s.count);
        }
        fn msg(b: &mut Vec<u8>, m: &LbMsg) {
            match m {
                LbMsg::ReduceUp { slot, summary: s } => {
                    b.push(0);
                    u32le(b, *slot);
                    summary(b, s);
                }
                LbMsg::ReduceDown { slot, summary: s } => {
                    b.push(1);
                    u32le(b, *slot);
                    summary(b, s);
                }
                LbMsg::Gossip {
                    epoch,
                    round,
                    pairs,
                } => {
                    b.push(2);
                    u64le(b, *epoch);
                    u32le(b, *round);
                    u32le(b, pairs.len() as u32);
                    for (r, load) in pairs {
                        u32le(b, r.as_u32());
                        f64le(b, *load);
                    }
                }
                LbMsg::Propose { epoch, tasks }
                | LbMsg::ProposeReply {
                    epoch,
                    rejected: tasks,
                } => {
                    b.push(if matches!(m, LbMsg::Propose { .. }) {
                        3
                    } else {
                        4
                    });
                    u64le(b, *epoch);
                    u32le(b, tasks.len() as u32);
                    for t in tasks {
                        u64le(b, t.id.as_u64());
                        f64le(b, t.load);
                        u32le(b, t.home.as_u32());
                    }
                }
                LbMsg::Fetch { epoch, tasks } | LbMsg::TaskData { epoch, tasks } => {
                    b.push(if matches!(m, LbMsg::Fetch { .. }) {
                        5
                    } else {
                        6
                    });
                    u64le(b, *epoch);
                    u32le(b, tasks.len() as u32);
                    for t in tasks {
                        u64le(b, t.as_u64());
                    }
                }
                LbMsg::View { base, dead } => {
                    b.push(7);
                    u64le(b, *base);
                    u32le(b, dead.len() as u32);
                    for r in dead {
                        u32le(b, r.as_u32());
                    }
                }
                LbMsg::Knock => b.push(8),
                LbMsg::Heal { base, dead } => {
                    b.push(9);
                    u64le(b, *base);
                    u32le(b, dead.len() as u32);
                    for r in dead {
                        u32le(b, r.as_u32());
                    }
                }
                LbMsg::Td(TdMsg::Token {
                    epoch,
                    wave,
                    sent,
                    recv,
                }) => {
                    b.push(10);
                    u64le(b, *epoch);
                    u64le(b, *wave);
                    u64le(b, *sent);
                    u64le(b, *recv);
                }
                LbMsg::Td(TdMsg::Terminated { epoch, sent }) => {
                    b.push(11);
                    u64le(b, *epoch);
                    u64le(b, *sent);
                }
            }
        }
        let mut b = Vec::new();
        match self {
            LbWire::Raw(m) => {
                b.push(0x20);
                msg(&mut b, m);
            }
            LbWire::Data { seq, msg: m } => {
                b.push(0x21);
                u64le(&mut b, *seq);
                msg(&mut b, m);
            }
            LbWire::Ack { seq } => {
                b.push(0x22);
                u64le(&mut b, *seq);
            }
            LbWire::Heartbeat => b.push(0x23),
            LbWire::Damaged { crc, bytes } => {
                b.push(0x24);
                u32le(&mut b, *crc);
                b.extend_from_slice(bytes);
            }
            LbWire::RetryTimer { to, seq } => {
                b.push(0x25);
                u32le(&mut b, to.as_u32());
                u64le(&mut b, *seq);
            }
            LbWire::StageTimer { stage_seq } => {
                b.push(0x26);
                u64le(&mut b, *stage_seq);
            }
            LbWire::HeartbeatTimer => b.push(0x27),
            LbWire::ParkTimer { park_seq } => {
                b.push(0x28);
                u64le(&mut b, *park_seq);
            }
        }
        b
    }

    /// CRC32 over the canonical encoding.
    pub fn checksum(&self) -> u32 {
        crc32(&self.encode())
    }

    /// The frame as it arrives after in-flight corruption: its canonical
    /// bytes with one deterministically chosen bit flipped, paired with
    /// the checksum of the *original* bytes. Verification at the receiver
    /// is guaranteed to fail (CRC32 detects every single-bit error).
    pub fn damaged(&self) -> LbWire {
        let bytes = self.encode();
        let crc = crc32(&bytes);
        let mut bytes = bytes;
        // Derive the flipped position from the checksum: deterministic
        // under a seed (the frame contents are), varied across frames.
        let bit = crc as usize % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        LbWire::Damaged { crc, bytes }
    }

    /// Receiver-side integrity check for a [`LbWire::Damaged`] frame:
    /// `true` when the stored checksum matches the received bytes. Other
    /// frames trivially verify (the model only wraps frames in `Damaged`
    /// when corruption actually struck).
    pub fn verify(&self) -> bool {
        match self {
            LbWire::Damaged { crc, bytes } => crc32(bytes) == *crc,
            _ => true,
        }
    }
}

/// Protocol messages.
#[derive(Clone, Debug)]
pub enum LbMsg {
    /// Reduction partial flowing child → parent for collective `slot`.
    ReduceUp {
        /// Collective slot: 0 is the initial load allreduce; slot
        /// `1 + trial·n_iters + iter` evaluates that iteration's proposal.
        slot: u32,
        /// Accumulated partial.
        summary: LoadSummary,
    },
    /// Reduction result broadcast root → leaves for collective `slot`.
    ReduceDown {
        /// Collective slot (see [`LbMsg::ReduceUp`]).
        slot: u32,
        /// Final reduced value.
        summary: LoadSummary,
    },
    /// Epidemic knowledge propagation (Algorithm 1).
    Gossip {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Message round `r`.
        round: u32,
        /// `(rank, load)` pairs — the sender's `S` and `LOAD()` snapshot.
        pairs: Vec<(RankId, f64)>,
    },
    /// Proposed (lazy) transfers: the recipient becomes the logical owner
    /// for subsequent iterations without any data movement.
    Propose {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Tasks now logically owned by the receiver.
        tasks: Vec<TaskEntry>,
    },
    /// Negative acknowledgement (optional, [`super::LbProtocolConfig::use_nacks`]):
    /// tasks the recipient refused because accepting them would push it
    /// past the average load — Menon et al.'s original mechanism, which
    /// the paper deliberately drops (§V-A). Returned tasks revert to the
    /// sender.
    ProposeReply {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Tasks bounced back to the proposer.
        rejected: Vec<TaskEntry>,
    },
    /// Commit stage: the final owner requests task data from the home
    /// rank.
    Fetch {
        /// TD epoch (the commit epoch).
        epoch: u64,
        /// Task ids to ship.
        tasks: Vec<TaskId>,
    },
    /// Commit stage: task payloads shipped home → final owner.
    TaskData {
        /// TD epoch (the commit epoch).
        epoch: u64,
        /// Task ids delivered.
        tasks: Vec<TaskId>,
    },
    /// Membership view-change propagation: the sender's full
    /// `(base, dead)` view. Control traffic (never TD-counted, never
    /// buffered): a receiver merges it via
    /// [`crate::membership::View::merge_full`] and, if its view changed,
    /// restarts its protocol on the survivors (or parks, if the quorum
    /// gate is on and the live component lost its majority) and
    /// re-broadcasts — a convergent flood, since merge_full is
    /// order-insensitive.
    View {
        /// The sender's heal-fence base generation (0 until the first
        /// partition heal; see [`crate::membership::View::base_gen`]).
        base: u64,
        /// Every rank the sender's view has declared dead.
        dead: Vec<RankId>,
    },
    /// Beacon a *parked* (quorum-less) rank sends to ranks it has fenced
    /// off: "I am alive and reachable — if you fenced me because of a
    /// partition, it has healed." Control traffic, best-effort; the
    /// receiving side's leader answers with a healed [`LbMsg::View`]
    /// (mid-run) or a [`LbMsg::Heal`] offer (post-commit).
    Knock,
    /// Post-commit heal offer: the majority component finished its run
    /// and its leader hands the parked rank the healed `(base, dead)`
    /// view so it can stand down read-only in agreement with the
    /// majority's committed outcome.
    Heal {
        /// Healed base generation (dominates every pre-heal generation).
        base: u64,
        /// Dead set of the healed view.
        dead: Vec<RankId>,
    },
    /// Termination-detection control traffic.
    Td(TdMsg),
}

impl LbMsg {
    /// The TD epoch a *basic* message belongs to; `None` for control and
    /// collective messages, which are never TD-counted or buffered.
    pub fn basic_epoch(&self) -> Option<u64> {
        match self {
            LbMsg::Gossip { epoch, .. }
            | LbMsg::Propose { epoch, .. }
            | LbMsg::ProposeReply { epoch, .. }
            | LbMsg::Fetch { epoch, .. }
            | LbMsg::TaskData { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }

    /// Modeled wire size in bytes, used by the executors' latency model
    /// and network accounting. Task *data* payloads are modeled via
    /// `bytes_per_task` at the send site, not here.
    pub fn wire_bytes(&self) -> usize {
        match self {
            LbMsg::ReduceUp { .. } | LbMsg::ReduceDown { .. } => 32,
            LbMsg::Gossip { pairs, .. } => 16 + 12 * pairs.len(),
            LbMsg::Propose { tasks, .. } => 16 + 20 * tasks.len(),
            LbMsg::ProposeReply { rejected, .. } => 16 + 20 * rejected.len(),
            LbMsg::Fetch { tasks, .. } => 16 + 8 * tasks.len(),
            LbMsg::TaskData { tasks, .. } => 16 + 8 * tasks.len(),
            // The heal-fence base rides inside the existing 8-byte view
            // header: keeping the modeled size unchanged keeps crash-stop
            // runs (base always 0) bit-identical to the pre-heal protocol.
            LbMsg::View { dead, .. } => 8 + 4 * dead.len(),
            LbMsg::Knock => 8,
            LbMsg::Heal { dead, .. } => 16 + 4 * dead.len(),
            LbMsg::Td(_) => crate::termination::TD_MSG_BYTES,
        }
    }
}

/// Full modeled cost of a protocol message: wire framing plus the
/// commit-stage task-data payload (`bytes_per_task` per shipped task).
/// Transports use this so retransmissions recompute the same cost as the
/// original transmission.
pub fn payload_bytes(msg: &LbMsg, bytes_per_task: usize) -> usize {
    let extra = match msg {
        LbMsg::TaskData { tasks, .. } => bytes_per_task * tasks.len(),
        _ => 0,
    };
    msg.wire_bytes() + extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_epoch_classification() {
        assert_eq!(
            LbMsg::Gossip {
                epoch: 3,
                round: 1,
                pairs: vec![]
            }
            .basic_epoch(),
            Some(3)
        );
        assert_eq!(
            LbMsg::Propose {
                epoch: 7,
                tasks: vec![]
            }
            .basic_epoch(),
            Some(7)
        );
        assert_eq!(
            LbMsg::ReduceUp {
                slot: 0,
                summary: LoadSummary::default()
            }
            .basic_epoch(),
            None
        );
        assert_eq!(
            LbMsg::Td(TdMsg::Terminated { epoch: 1, sent: 0 }).basic_epoch(),
            None
        );
    }

    #[test]
    fn wire_framing_overhead() {
        let inner = LbMsg::Fetch {
            epoch: 2,
            tasks: vec![TaskId::new(1), TaskId::new(2)],
        };
        let raw = LbWire::Raw(inner.clone()).wire_bytes();
        let framed = LbWire::Data { seq: 9, msg: inner }.wire_bytes();
        assert_eq!(raw + SEQ_OVERHEAD_BYTES, framed);
        assert_eq!(LbWire::Ack { seq: 9 }.wire_bytes(), SEQ_OVERHEAD_BYTES);
        assert_eq!(
            LbWire::RetryTimer {
                to: RankId::new(0),
                seq: 1
            }
            .wire_bytes(),
            0
        );
        assert_eq!(LbWire::StageTimer { stage_seq: 3 }.wire_bytes(), 0);
        assert_eq!(LbWire::HeartbeatTimer.wire_bytes(), 0);
        assert_eq!(LbWire::ParkTimer { park_seq: 1 }.wire_bytes(), 0);
        assert!(
            LbWire::Heartbeat.wire_bytes() > 0,
            "heartbeats cross the wire"
        );
    }

    #[test]
    fn view_changes_are_control_traffic() {
        let msg = LbMsg::View {
            base: 0,
            dead: vec![RankId::new(3), RankId::new(5)],
        };
        assert_eq!(msg.basic_epoch(), None, "views must never be TD-counted");
        assert!(
            msg.wire_bytes()
                > LbMsg::View {
                    base: 0,
                    dead: vec![]
                }
                .wire_bytes()
        );
        assert_eq!(LbMsg::Knock.basic_epoch(), None);
        assert_eq!(
            LbMsg::Heal {
                base: 9,
                dead: vec![]
            }
            .basic_epoch(),
            None
        );
    }

    #[test]
    fn encoding_is_deterministic_and_distinguishes_frames() {
        let a = LbWire::Data {
            seq: 4,
            msg: LbMsg::Gossip {
                epoch: 1,
                round: 2,
                pairs: vec![(RankId::new(3), 0.5)],
            },
        };
        assert_eq!(a.encode(), a.encode());
        assert_eq!(a.checksum(), a.checksum());
        let b = LbWire::Data {
            seq: 5,
            msg: LbMsg::Gossip {
                epoch: 1,
                round: 2,
                pairs: vec![(RankId::new(3), 0.5)],
            },
        };
        assert_ne!(a.checksum(), b.checksum(), "seq is covered by the crc");
    }

    #[test]
    fn single_flipped_bit_fails_verification() {
        let frames = [
            LbWire::Raw(LbMsg::View {
                base: 7,
                dead: vec![RankId::new(1)],
            }),
            LbWire::Data {
                seq: 12,
                msg: LbMsg::Propose {
                    epoch: 3,
                    tasks: vec![TaskEntry {
                        id: TaskId::new(9),
                        load: 1.25,
                        home: RankId::new(2),
                    }],
                },
            },
            LbWire::Ack { seq: 1 },
            LbWire::Heartbeat,
        ];
        for frame in frames {
            assert!(frame.verify(), "intact frames verify");
            let dam = frame.damaged();
            assert!(!dam.verify(), "one flipped bit must fail the crc");
            let LbWire::Damaged { bytes, .. } = &dam else {
                panic!("damaged() wraps in Damaged");
            };
            assert_eq!(
                bytes.len(),
                frame.encode().len(),
                "corruption flips bits, it does not truncate"
            );
            assert_eq!(dam.wire_bytes(), bytes.len());
        }
    }

    #[test]
    fn every_flipped_bit_position_is_caught() {
        // Exhaustive over a small frame: whichever bit the model flips,
        // the receiver-side check must catch it.
        let frame = LbWire::Raw(LbMsg::Knock);
        let bytes = frame.encode();
        let crc = frame.checksum();
        for bit in 0..bytes.len() * 8 {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let dam = LbWire::Damaged {
                crc,
                bytes: corrupted,
            };
            assert!(!dam.verify(), "bit {bit} slipped through");
        }
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = LbMsg::Gossip {
            epoch: 0,
            round: 0,
            pairs: vec![],
        };
        let big = LbMsg::Gossip {
            epoch: 0,
            round: 0,
            pairs: vec![(RankId::new(0), 1.0); 100],
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        assert_eq!(big.wire_bytes() - small.wire_bytes(), 1200);
    }
}
