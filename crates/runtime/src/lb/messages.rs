//! Wire messages of the asynchronous LB protocol.
//!
//! Every *basic* (TD-counted) message carries the termination-detection
//! epoch it belongs to, so ranks that have not yet advanced to that epoch
//! can buffer it instead of processing it out of order — the standard
//! epoch-stamping discipline of barrier-free AMT runtimes.

use crate::collective::LoadSummary;
use crate::termination::TdMsg;
use tempered_core::ids::{RankId, TaskId};

/// A migratable task as carried by protocol messages: identity, measured
/// load, and the rank that physically holds its data (its *home* at the
/// start of the LB pass — lazy migration fetches from there at commit
/// time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskEntry {
    /// Stable task identity.
    pub id: TaskId,
    /// Instrumented load (f64 seconds).
    pub load: f64,
    /// Rank holding the task's data since the LB pass began.
    pub home: RankId,
}

/// Transport envelope around [`LbMsg`]: the delivery layer of the
/// hardened protocol.
///
/// With [`super::LbProtocolConfig::reliability`] unset every message
/// travels as [`LbWire::Raw`] — zero overhead, bit-identical to the
/// historical best-effort protocol. With a [`crate::reliable::RetryConfig`]
/// installed, protocol messages travel as [`LbWire::Data`] with a
/// per-link sequence number and are acknowledged / retransmitted /
/// deduplicated by a [`crate::reliable::ReliableChannel`]; the two timer
/// variants are scheduled by a rank *to itself* via
/// [`crate::sim::Ctx::schedule`] and never cross the network.
#[derive(Clone, Debug)]
pub enum LbWire {
    /// Best-effort transmission (legacy mode; no delivery guarantee).
    Raw(LbMsg),
    /// Reliable transmission: retransmitted until acknowledged,
    /// deduplicated by `seq` at the receiver.
    Data {
        /// Per-(sender → receiver) sequence number, starting at 1.
        seq: u64,
        /// The protocol payload.
        msg: LbMsg,
    },
    /// Acknowledgement for a [`LbWire::Data`] with the same `seq`
    /// (best-effort; a lost ack merely causes a redundant resend).
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Self-timer: check whether `(to, seq)` is still unacknowledged
    /// and retransmit or give up.
    RetryTimer {
        /// Destination of the pending message.
        to: RankId,
        /// Its sequence number.
        seq: u64,
    },
    /// Self-timer: if the rank's stage-transition counter still equals
    /// `stage_seq` when this fires, the stage has made no progress for a
    /// full deadline and the rank degrades.
    StageTimer {
        /// Value of the stage counter when the timer was armed.
        stage_seq: u64,
    },
    /// Liveness beacon for the heartbeat failure detector
    /// ([`crate::health::HealthDetector`]). Deliberately *outside* the
    /// reliable layer: heartbeats are periodic and self-correcting, so
    /// retransmitting a lost one is pointless — and a crashed receiver
    /// must not burn the sender's retry budget.
    Heartbeat,
    /// Self-timer driving the heartbeat send period and the failure
    /// detector's poll.
    HeartbeatTimer,
}

/// Wire overhead of the reliable framing (sequence number + tag),
/// added to [`LbMsg::wire_bytes`] for [`LbWire::Data`] transmissions.
pub const SEQ_OVERHEAD_BYTES: usize = 12;

impl LbWire {
    /// Modeled wire size. Timers never cross the network and cost 0.
    pub fn wire_bytes(&self) -> usize {
        match self {
            LbWire::Raw(m) => m.wire_bytes(),
            LbWire::Data { msg, .. } => msg.wire_bytes() + SEQ_OVERHEAD_BYTES,
            LbWire::Ack { .. } => SEQ_OVERHEAD_BYTES,
            LbWire::Heartbeat => 8,
            LbWire::RetryTimer { .. } | LbWire::StageTimer { .. } | LbWire::HeartbeatTimer => 0,
        }
    }
}

/// Protocol messages.
#[derive(Clone, Debug)]
pub enum LbMsg {
    /// Reduction partial flowing child → parent for collective `slot`.
    ReduceUp {
        /// Collective slot: 0 is the initial load allreduce; slot
        /// `1 + trial·n_iters + iter` evaluates that iteration's proposal.
        slot: u32,
        /// Accumulated partial.
        summary: LoadSummary,
    },
    /// Reduction result broadcast root → leaves for collective `slot`.
    ReduceDown {
        /// Collective slot (see [`LbMsg::ReduceUp`]).
        slot: u32,
        /// Final reduced value.
        summary: LoadSummary,
    },
    /// Epidemic knowledge propagation (Algorithm 1).
    Gossip {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Message round `r`.
        round: u32,
        /// `(rank, load)` pairs — the sender's `S` and `LOAD()` snapshot.
        pairs: Vec<(RankId, f64)>,
    },
    /// Proposed (lazy) transfers: the recipient becomes the logical owner
    /// for subsequent iterations without any data movement.
    Propose {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Tasks now logically owned by the receiver.
        tasks: Vec<TaskEntry>,
    },
    /// Negative acknowledgement (optional, [`super::LbProtocolConfig::use_nacks`]):
    /// tasks the recipient refused because accepting them would push it
    /// past the average load — Menon et al.'s original mechanism, which
    /// the paper deliberately drops (§V-A). Returned tasks revert to the
    /// sender.
    ProposeReply {
        /// TD epoch this message belongs to.
        epoch: u64,
        /// Tasks bounced back to the proposer.
        rejected: Vec<TaskEntry>,
    },
    /// Commit stage: the final owner requests task data from the home
    /// rank.
    Fetch {
        /// TD epoch (the commit epoch).
        epoch: u64,
        /// Task ids to ship.
        tasks: Vec<TaskId>,
    },
    /// Commit stage: task payloads shipped home → final owner.
    TaskData {
        /// TD epoch (the commit epoch).
        epoch: u64,
        /// Task ids delivered.
        tasks: Vec<TaskId>,
    },
    /// Membership view-change propagation: the sender's full dead set.
    /// Control traffic (never TD-counted, never buffered): a receiver
    /// merges the set into its own view and, if the union grew, restarts
    /// its protocol on the survivors and re-broadcasts — a convergent
    /// flood, since dead sets only ever grow (crash-stop).
    View {
        /// Every rank the sender's view has declared dead.
        dead: Vec<RankId>,
    },
    /// Termination-detection control traffic.
    Td(TdMsg),
}

impl LbMsg {
    /// The TD epoch a *basic* message belongs to; `None` for control and
    /// collective messages, which are never TD-counted or buffered.
    pub fn basic_epoch(&self) -> Option<u64> {
        match self {
            LbMsg::Gossip { epoch, .. }
            | LbMsg::Propose { epoch, .. }
            | LbMsg::ProposeReply { epoch, .. }
            | LbMsg::Fetch { epoch, .. }
            | LbMsg::TaskData { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }

    /// Modeled wire size in bytes, used by the executors' latency model
    /// and network accounting. Task *data* payloads are modeled via
    /// `bytes_per_task` at the send site, not here.
    pub fn wire_bytes(&self) -> usize {
        match self {
            LbMsg::ReduceUp { .. } | LbMsg::ReduceDown { .. } => 32,
            LbMsg::Gossip { pairs, .. } => 16 + 12 * pairs.len(),
            LbMsg::Propose { tasks, .. } => 16 + 20 * tasks.len(),
            LbMsg::ProposeReply { rejected, .. } => 16 + 20 * rejected.len(),
            LbMsg::Fetch { tasks, .. } => 16 + 8 * tasks.len(),
            LbMsg::TaskData { tasks, .. } => 16 + 8 * tasks.len(),
            LbMsg::View { dead } => 8 + 4 * dead.len(),
            LbMsg::Td(_) => crate::termination::TD_MSG_BYTES,
        }
    }
}

/// Full modeled cost of a protocol message: wire framing plus the
/// commit-stage task-data payload (`bytes_per_task` per shipped task).
/// Transports use this so retransmissions recompute the same cost as the
/// original transmission.
pub fn payload_bytes(msg: &LbMsg, bytes_per_task: usize) -> usize {
    let extra = match msg {
        LbMsg::TaskData { tasks, .. } => bytes_per_task * tasks.len(),
        _ => 0,
    };
    msg.wire_bytes() + extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_epoch_classification() {
        assert_eq!(
            LbMsg::Gossip {
                epoch: 3,
                round: 1,
                pairs: vec![]
            }
            .basic_epoch(),
            Some(3)
        );
        assert_eq!(
            LbMsg::Propose {
                epoch: 7,
                tasks: vec![]
            }
            .basic_epoch(),
            Some(7)
        );
        assert_eq!(
            LbMsg::ReduceUp {
                slot: 0,
                summary: LoadSummary::default()
            }
            .basic_epoch(),
            None
        );
        assert_eq!(
            LbMsg::Td(TdMsg::Terminated { epoch: 1, sent: 0 }).basic_epoch(),
            None
        );
    }

    #[test]
    fn wire_framing_overhead() {
        let inner = LbMsg::Fetch {
            epoch: 2,
            tasks: vec![TaskId::new(1), TaskId::new(2)],
        };
        let raw = LbWire::Raw(inner.clone()).wire_bytes();
        let framed = LbWire::Data { seq: 9, msg: inner }.wire_bytes();
        assert_eq!(raw + SEQ_OVERHEAD_BYTES, framed);
        assert_eq!(LbWire::Ack { seq: 9 }.wire_bytes(), SEQ_OVERHEAD_BYTES);
        assert_eq!(
            LbWire::RetryTimer {
                to: RankId::new(0),
                seq: 1
            }
            .wire_bytes(),
            0
        );
        assert_eq!(LbWire::StageTimer { stage_seq: 3 }.wire_bytes(), 0);
        assert_eq!(LbWire::HeartbeatTimer.wire_bytes(), 0);
        assert!(
            LbWire::Heartbeat.wire_bytes() > 0,
            "heartbeats cross the wire"
        );
    }

    #[test]
    fn view_changes_are_control_traffic() {
        let msg = LbMsg::View {
            dead: vec![RankId::new(3), RankId::new(5)],
        };
        assert_eq!(msg.basic_epoch(), None, "views must never be TD-counted");
        assert!(msg.wire_bytes() > LbMsg::View { dead: vec![] }.wire_bytes());
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = LbMsg::Gossip {
            epoch: 0,
            round: 0,
            pairs: vec![],
        };
        let big = LbMsg::Gossip {
            epoch: 0,
            round: 0,
            pairs: vec![(RankId::new(0), 1.0); 100],
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        assert_eq!(big.wire_bytes() - small.wire_bytes(), 1200);
    }
}
