//! Userspace link emulator: one [`FaultPlan`] interpreter shared by the
//! real-I/O drivers.
//!
//! The deterministic simulator applies fault fates inside its own event
//! loop (it owns virtual time and can multiply latencies); the threaded
//! executor and the TCP socket driver instead face *real* clocks and
//! real transports, and both need the exact same send-time decision
//! procedure: per-message fate (drop / duplicate / delay spike), then
//! directed link fate (cut / lossy / delay / flap / corrupt + partition
//! windows), then receiver pause deferral — all drawn from the plan's
//! seeded hash streams so the n-th message on a link suffers the same
//! fate under every driver.
//!
//! This module factors that procedure out of the drivers. The emulator
//! is pure with respect to time: callers pass `now` (seconds since run
//! start — wall-clock for the real drivers) and get back zero or more
//! [`Delivery`] values with an optional earliest-delivery time in the
//! same clock. How a "delivery" travels afterwards (crossbeam channel,
//! TCP frame) is the driver's business, which is exactly what lets the
//! chaos grids rerun over real sockets and commit bit-for-bit what the
//! simulator commits (see `DESIGN.md` §12).

use crate::fault::{CrashSchedule, Fate, FaultInjector, FaultPlan, FaultStats, LinkFate};
use crate::sim::Protocol;
use tempered_core::ids::RankId;
use tempered_obs::{EventKind, Recorder};

/// One surviving copy of an emulated send.
#[derive(Clone, Debug)]
pub struct Delivery<M> {
    /// The message (possibly corrupted in flight via
    /// [`Protocol::corrupted`]).
    pub msg: M,
    /// Earliest delivery time in seconds since run start (`None` =
    /// deliver immediately). Produced by delay-style fates and pause
    /// windows; the driver holds the message until this time passes.
    pub not_before: Option<f64>,
}

/// Send-time and delivery-time fault interpreter for real-I/O drivers.
///
/// Construct once per rank process (or per worker thread — per-link
/// ordinal streams are keyed by the *sending* rank, so any partitioning
/// of the emulator that keeps all of a rank's sends on one instance
/// reproduces the single-injector simulator exactly).
pub struct LinkEmulator {
    injector: Option<FaultInjector>,
    crash_sched: CrashSchedule,
    recorder: Recorder,
    /// Deliveries discarded because the destination was crashed.
    crash_dropped: u64,
    /// Seconds of hold-back per unit of injected latency factor.
    delay_unit: f64,
}

impl LinkEmulator {
    /// Build an emulator for `plan`. A [`FaultPlan::is_zero`] plan is
    /// validated and discarded outright (the fast path then touches no
    /// hash stream at all), mirroring both executors' behavior. The
    /// recorder receives one instant event per injected fault;
    /// `delay_unit` is the driver's wall-clock hold-back per unit of
    /// latency factor (e.g. [`crate::parallel::PARALLEL_DELAY_UNIT`]).
    pub fn new(plan: FaultPlan, recorder: Recorder, delay_unit: f64) -> Self {
        let crash_sched = CrashSchedule::new(&plan.crashes);
        let injector = if plan.is_zero() {
            plan.validate_or_panic();
            None
        } else {
            Some(FaultInjector::new(plan))
        };
        LinkEmulator {
            injector,
            crash_sched,
            recorder,
            crash_dropped: 0,
            delay_unit,
        }
    }

    /// Whether the plan injects nothing (the passthrough fast path).
    pub fn is_passthrough(&self) -> bool {
        self.injector.is_none() && self.crash_sched.is_empty()
    }

    /// Apply send-time fates to one outgoing message at time `now`
    /// (seconds since run start): the surviving copies, in delivery
    /// order. An empty vector means the message was severed (dropped,
    /// cut, or corrupted with no corruption model).
    pub fn outgoing<P: Protocol>(
        &mut self,
        from: RankId,
        to: RankId,
        msg: P::Msg,
        now: f64,
    ) -> Vec<Delivery<P::Msg>> {
        let Some(inj) = &mut self.injector else {
            return vec![Delivery {
                msg,
                not_before: None,
            }];
        };
        if !P::faultable(&msg) {
            return vec![Delivery {
                msg,
                not_before: None,
            }];
        }
        let fate = inj.fate(from, to);
        let link = inj.link_fate(from, to, now);
        if self.recorder.is_enabled() {
            record_fates(&self.recorder, from, to, now, &fate, &link);
        }
        if link.cut {
            return Vec::new();
        }
        let msg = if link.corrupt {
            match P::corrupted(&msg) {
                Some(bad) => bad,
                // No corruption model: indistinguishable from loss.
                None => return Vec::new(),
            }
        } else {
            msg
        };
        let mut out = Vec::with_capacity(fate.copies as usize);
        for copy in 0..fate.copies {
            // A duplicated copy trails the original, like a
            // retransmission overlapping the first delivery.
            let extra = (fate.delay_factor * link.delay_factor - 1.0).max(0.0) * (copy + 1) as f64;
            let mut not_before = if extra > 0.0 {
                Some(now + extra * self.delay_unit)
            } else {
                None
            };
            let arrival = not_before.unwrap_or(now);
            if let Some(until) = inj.deferred_until(to, arrival) {
                not_before = Some(until);
                self.recorder.instant(
                    from.as_u32(),
                    now,
                    EventKind::Fault {
                        kind: "pause",
                        to: to.as_u32(),
                    },
                );
            }
            out.push(Delivery {
                msg: msg.clone(),
                not_before,
            });
        }
        out
    }

    /// Delivery-time crash check: whether `to` is up at `now`. A `false`
    /// verdict counts the discarded delivery (and records it), mirroring
    /// the simulator's pop-time crash drop.
    pub fn admit(&mut self, from: RankId, to: RankId, now: f64) -> bool {
        if !self.crash_sched.is_down(to, now) {
            return true;
        }
        self.crash_dropped += 1;
        if self.recorder.is_enabled() {
            self.recorder.instant(
                from.as_u32(),
                now,
                EventKind::Fault {
                    kind: "crash_drop",
                    to: to.as_u32(),
                },
            );
        }
        false
    }

    /// Whether `rank` is crashed at `now` with no restart ever coming —
    /// such a rank can never report done, so executors count it as
    /// finished instead of hanging (the `sweep_crashed` rule).
    pub fn down_forever(&self, rank: RankId, now: f64) -> bool {
        self.crash_sched.is_down_forever(rank, now)
    }

    /// Whether the plan contains any crash events at all (lets drivers
    /// skip the sweep entirely).
    pub fn has_crashes(&self) -> bool {
        !self.crash_sched.is_empty()
    }

    /// Injected-fault accounting so far, including crash drops.
    pub fn stats(&self) -> FaultStats {
        let mut stats = self.injector.as_ref().map(|i| i.stats).unwrap_or_default();
        stats.crash_dropped += self.crash_dropped;
        stats
    }
}

/// Emit one recorder instant per fault decision that struck.
fn record_fates(
    recorder: &Recorder,
    from: RankId,
    to: RankId,
    now: f64,
    fate: &Fate,
    link: &LinkFate,
) {
    let fault = |kind| EventKind::Fault {
        kind,
        to: to.as_u32(),
    };
    if fate.copies == 0 {
        recorder.instant(from.as_u32(), now, fault("drop"));
    } else if fate.copies > 1 {
        recorder.instant(from.as_u32(), now, fault("duplicate"));
    }
    if fate.delay_factor > 1.0 {
        recorder.instant(from.as_u32(), now, fault("delay"));
    }
    if link.cut {
        recorder.instant(from.as_u32(), now, fault("link_cut"));
    }
    if link.delay_factor > 1.0 {
        recorder.instant(from.as_u32(), now, fault("link_delay"));
    }
    if link.corrupt {
        recorder.instant(from.as_u32(), now, fault("corrupt"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CrashEvent, LinkFault, LinkFaultKind, PartitionWindow};
    use crate::sim::Ctx;

    /// Minimal protocol for exercising the emulator generically.
    struct Echo;
    impl Protocol for Echo {
        type Msg = u32;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, u32>) {}
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: RankId, _msg: u32) {}
        fn corrupted(msg: &u32) -> Option<u32> {
            Some(msg ^ 1)
        }
    }

    /// A protocol with no corruption model: corrupt faults become loss.
    struct NoModel;
    impl Protocol for NoModel {
        type Msg = u32;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, u32>) {}
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: RankId, _msg: u32) {}
    }

    fn emu(plan: FaultPlan) -> LinkEmulator {
        LinkEmulator::new(plan, Recorder::disabled(), 1e-4)
    }

    #[test]
    fn zero_plan_is_a_passthrough() {
        let mut e = emu(FaultPlan::none());
        assert!(e.is_passthrough());
        let out = e.outgoing::<Echo>(RankId::new(0), RankId::new(1), 7, 0.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, 7);
        assert!(out[0].not_before.is_none());
        assert!(e.admit(RankId::new(0), RankId::new(1), 0.0));
        assert_eq!(e.stats(), FaultStats::default());
    }

    #[test]
    fn cut_link_severs_and_counts() {
        let mut e = emu(FaultPlan {
            links: vec![LinkFault {
                src: vec![RankId::new(0)],
                dst: vec![RankId::new(1)],
                start: 0.0,
                end: None,
                kind: LinkFaultKind::Cut,
            }],
            ..FaultPlan::none()
        });
        assert!(e
            .outgoing::<Echo>(RankId::new(0), RankId::new(1), 7, 0.0)
            .is_empty());
        // The reverse direction is untouched.
        assert_eq!(
            e.outgoing::<Echo>(RankId::new(1), RankId::new(0), 7, 0.0)
                .len(),
            1
        );
        assert_eq!(e.stats().link_cut, 1);
    }

    #[test]
    fn corruption_uses_the_protocol_model_or_becomes_loss() {
        let plan = || FaultPlan {
            seed: 5,
            links: vec![LinkFault {
                src: vec![RankId::new(0)],
                dst: vec![RankId::new(1)],
                start: 0.0,
                end: None,
                kind: LinkFaultKind::Corrupt { p: 1.0 },
            }],
            ..FaultPlan::none()
        };
        let mut with_model = emu(plan());
        let out = with_model.outgoing::<Echo>(RankId::new(0), RankId::new(1), 6, 0.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, 7, "corruption model applied in flight");

        let mut without = emu(plan());
        assert!(
            without
                .outgoing::<NoModel>(RankId::new(0), RankId::new(1), 6, 0.0)
                .is_empty(),
            "no corruption model: damage is loss"
        );
    }

    #[test]
    fn delay_fates_hold_back_in_driver_units() {
        let mut e = emu(FaultPlan {
            links: vec![LinkFault {
                src: vec![RankId::new(0)],
                dst: vec![RankId::new(1)],
                start: 0.0,
                end: None,
                kind: LinkFaultKind::Delay { factor: 5.0 },
            }],
            ..FaultPlan::none()
        });
        let out = e.outgoing::<Echo>(RankId::new(0), RankId::new(1), 7, 2.0);
        assert_eq!(out.len(), 1);
        // (5 − 1) × delay_unit past `now`.
        let expected = 2.0 + 4.0 * 1e-4;
        assert!((out[0].not_before.unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_delivered_in_order() {
        let mut e = emu(FaultPlan {
            seed: 3,
            duplicate: 1.0,
            ..FaultPlan::none()
        });
        let out = e.outgoing::<Echo>(RankId::new(0), RankId::new(1), 7, 0.0);
        assert_eq!(out.len(), 2);
        // Without a delay fate both copies travel back-to-back (the
        // wall-clock drivers have no base latency to multiply); a delay
        // fate staggers them via the `(copy + 1)` factor.
        assert!(out[0].not_before.is_none());
        assert!(out[1].not_before.is_none());
        assert_eq!(e.stats().duplicated, 1);
    }

    #[test]
    fn partitions_cut_send_time_windows() {
        let mut e = emu(FaultPlan {
            partitions: vec![PartitionWindow {
                side: vec![RankId::new(1)],
                start: 1.0,
                end: Some(2.0),
            }],
            ..FaultPlan::none()
        });
        let send = |e: &mut LinkEmulator, now| {
            e.outgoing::<Echo>(RankId::new(0), RankId::new(1), 7, now)
                .len()
        };
        assert_eq!(send(&mut e, 0.5), 1, "before the window");
        assert_eq!(send(&mut e, 1.5), 0, "inside the window");
        assert_eq!(send(&mut e, 2.5), 1, "after the heal");
    }

    #[test]
    fn crash_windows_gate_admission_and_count_drops() {
        let mut e = emu(FaultPlan {
            crashes: vec![CrashEvent::fatal(RankId::new(2), 1.0)],
            ..FaultPlan::none()
        });
        assert!(e.has_crashes());
        assert!(e.admit(RankId::new(0), RankId::new(2), 0.5));
        assert!(!e.admit(RankId::new(0), RankId::new(2), 1.5));
        assert_eq!(e.stats().crash_dropped, 1);
        assert!(!e.down_forever(RankId::new(2), 0.5));
        assert!(e.down_forever(RankId::new(2), 1.5));
        assert!(!e.down_forever(RankId::new(0), 99.0));
    }

    #[test]
    fn ordinal_streams_match_across_instances() {
        // Two emulators over the same plan must draw identical per-link
        // fates — the property that lets every rank process run its own
        // instance and still reproduce the single-injector simulator.
        let plan = || FaultPlan {
            seed: 11,
            links: vec![LinkFault {
                src: vec![RankId::new(0)],
                dst: vec![RankId::new(1)],
                start: 0.0,
                end: None,
                kind: LinkFaultKind::Lossy { p: 0.5 },
            }],
            ..FaultPlan::none()
        };
        let mut a = emu(plan());
        let mut b = emu(plan());
        for i in 0..64 {
            let sa = a
                .outgoing::<Echo>(RankId::new(0), RankId::new(1), i, 0.0)
                .len();
            let sb = b
                .outgoing::<Echo>(RankId::new(0), RankId::new(1), i, 0.0)
                .len();
            assert_eq!(sa, sb, "message {i} diverged");
        }
        assert_eq!(a.stats(), b.stats());
    }
}
