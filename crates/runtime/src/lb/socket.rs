//! TCP socket driver: the LB protocol over real OS sockets.
//!
//! The third driver in the sans-I/O stack (after the discrete-event
//! [`crate::sim::Simulator`] and the threaded `parallel` executor): one
//! OS process per rank, [`LbWire`] frames over length-prefixed TCP
//! streams, the same [`LbRank`] actor and the same
//! [`LinkEmulator`]-interpreted [`FaultPlan`] as everywhere else.
//!
//! Layout per rank process (see `DESIGN.md` §12):
//!
//! ```text
//! accept thread     nonblocking accept + handshake, spawns readers
//! reader threads    stream → FrameReader → (from, LbWire) channel
//! writer threads    per-peer frame queue → connect/reconnect → stream
//! main loop         LbRank + LinkEmulator + timer heap (this file)
//! ```
//!
//! The main loop mirrors the parallel executor's worker exactly: sends
//! pass through the emulator at send time (per-link fault ordinals are
//! keyed by the sending rank, so per-process emulators reproduce the
//! single-injector simulator), delay fates hold frames back on the
//! *sender* side, and crash windows gate admission at delivery time.
//! Real TCP loss — a reset mid-run, a peer not yet listening — is
//! absorbed by reconnect-with-backoff below and the `Reliable`
//! transport above, the same contract as an injected drop.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes = LbWire::encode()]
//! ```
//!
//! `crc` is [`crc32`] over the payload. A frame whose CRC does not
//! match is *not* discarded silently: it surfaces as
//! [`LbWire::Damaged`] so the receive path drops it unacked (the
//! [`super::transport::Reliable`] layer then re-delivers the original)
//! — in-flight damage and injected corruption take the same path.

use super::messages::LbWire;
use super::rank::LbRank;
use crate::crc::crc32;
use crate::fault::{FaultPlan, FaultStats};
use crate::lb::emulator::LinkEmulator;
use crate::sim::{Ctx, Protocol};
use crate::wheel::HeldQueue;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::Rng;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempered_core::ids::RankId;
use tempered_core::rng::RngFactory;
use tempered_obs::NetworkStats;

/// Handshake preamble: magic, then the sender's rank id (both u32 LE).
const HANDSHAKE_MAGIC: u32 = 0x544C_4231; // "TLB1"

/// Upper bound on a frame payload; anything larger is a protocol error
/// (the largest legitimate frame is a `TaskData` batch, well under 1 MiB
/// at realistic task counts).
const MAX_FRAME_BYTES: usize = 64 << 20;

/// Serialize one wire frame: length prefix, payload CRC, payload.
///
/// Header and payload are laid into a single allocation: the payload is
/// encoded in place after a blank header, which is then back-patched —
/// the bytes are identical to the historical two-buffer construction.
pub fn encode_frame(wire: &LbWire) -> Vec<u8> {
    let mut out = vec![0u8; 8];
    wire.encode_into(&mut out);
    let len = out.len() - 8;
    let crc = crc32(&out[8..]);
    out[0..4].copy_from_slice(&(len as u32).to_le_bytes());
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Incremental frame reassembler for one TCP stream.
///
/// Feed raw bytes with [`FrameReader::push`] in whatever chunks the
/// socket produces; [`FrameReader::next`] pops complete frames. Frames
/// that fail the CRC or do not decode are returned as
/// [`LbWire::Damaged`] (with a failing checksum) rather than dropped,
/// so the receive path counts and handles them like injected
/// corruption.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reassembler.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet assembled into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if one has fully arrived.
    ///
    /// Returns `None` while the frame is still partial. A payload whose
    /// CRC mismatches arrives as `LbWire::Damaged { crc: <expected>,
    /// bytes: <received> }`, whose [`LbWire::verify`] fails — exactly
    /// the shape injected corruption takes. A CRC-valid payload that
    /// does not decode (a peer speaking a different dialect) is wrapped
    /// the same way, with the checksum inverted so verification still
    /// fails.
    pub fn next_frame(&mut self) -> Option<LbWire> {
        if self.buf.len() < 8 {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.buf[4..8].try_into().unwrap());
        if len > MAX_FRAME_BYTES {
            // Desynchronized or hostile stream: surface one damaged
            // frame and resynchronize by discarding the buffer.
            let bytes = std::mem::take(&mut self.buf);
            return Some(LbWire::Damaged {
                crc: !crc32(&bytes),
                bytes,
            });
        }
        if self.buf.len() < 8 + len {
            return None;
        }
        // Decode straight out of the reassembly buffer: the payload is
        // only copied out on the damaged paths, which need to own the
        // bytes they surface.
        let payload = &self.buf[8..8 + len];
        let wire = if crc32(payload) != crc {
            LbWire::Damaged {
                crc,
                bytes: payload.to_vec(),
            }
        } else {
            match LbWire::decode(payload) {
                Ok(wire) => wire,
                Err(_) => LbWire::Damaged {
                    crc: !crc,
                    bytes: payload.to_vec(),
                },
            }
        };
        self.buf.drain(..8 + len);
        Some(wire)
    }
}

/// Knobs for [`run_socket_rank`].
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout — also the cadence at which reader/writer
    /// threads notice shutdown.
    pub read_timeout: Duration,
    /// First reconnect backoff; doubles per failed attempt.
    pub initial_backoff: Duration,
    /// Reconnect backoff ceiling.
    pub max_backoff: Duration,
    /// Hard wall-clock bound on the whole run; exceeding it abandons
    /// the run (`finished` may still be true if the protocol was done).
    pub deadline: Duration,
    /// Seed for the reconnect jitter streams (derive it from the run
    /// seed so retries are reproducible, not protocol-coupled).
    pub seed: u64,
    /// Faults to emulate in userspace between engine and socket.
    pub fault_plan: FaultPlan,
    /// Seconds of sender-side hold-back per unit of injected latency
    /// factor (the socket analogue of
    /// [`crate::parallel::PARALLEL_DELAY_UNIT`]).
    pub delay_unit: f64,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(50),
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            deadline: Duration::from_secs(60),
            seed: 0,
            fault_plan: FaultPlan::none(),
            delay_unit: crate::parallel::PARALLEL_DELAY_UNIT.as_secs_f64(),
        }
    }
}

/// Outcome of one rank process's run.
#[derive(Debug)]
pub struct SocketRankReport {
    /// The actor in its final state (assignment, stats, stage).
    pub rank: LbRank,
    /// Messages/bytes this rank sent (modeled payload bytes, matching
    /// the other drivers' accounting).
    pub network: NetworkStats,
    /// Injected-fault accounting from this rank's emulator (send-side
    /// fates for its own traffic plus crash drops on delivery).
    pub faults: FaultStats,
    /// Whether the protocol reached Done here before stop/deadline.
    pub finished: bool,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
}

/// A held-back event in the main loop: an inbound delivery (timers,
/// self-sends) or an outbound frame delayed by an emulated fate.
enum HeldItem {
    Deliver { from: RankId, msg: LbWire },
    Send { to: RankId, msg: LbWire },
}

/// Run one rank of the LB protocol over TCP until `stop` is raised or
/// the deadline passes.
///
/// `listener` must already be bound (bind to port 0 and distribute the
/// resulting map to avoid races); `peers[r]` is rank `r`'s address
/// (`peers[me]` is ignored). `on_done` fires exactly once, the first
/// time the protocol reaches Done locally — or when the fault plan has
/// permanently crashed this rank, which can never finish — so an
/// orchestrator can collect doneness before telling everyone to exit.
///
/// The function returns once `stop` is observed (normal teardown) or
/// the deadline expires; it keeps serving acks, heartbeats, and heal
/// traffic in between, which is what lets peers finish after we do.
pub fn run_socket_rank(
    me: RankId,
    mut rank: LbRank,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    cfg: SocketConfig,
    stop: Arc<AtomicBool>,
    mut on_done: impl FnMut(),
) -> SocketRankReport {
    let num_ranks = peers.len();
    let start = Instant::now();
    let halt = Arc::new(AtomicBool::new(false));
    let mut emulator = LinkEmulator::new(
        cfg.fault_plan.clone(),
        tempered_obs::Recorder::disabled(),
        cfg.delay_unit,
    );
    let (in_tx, in_rx) = unbounded::<(RankId, LbWire)>();

    // Per-peer outbound frame queues, drained by writer threads.
    let mut out_tx: Vec<Option<Sender<Vec<u8>>>> = (0..num_ranks).map(|_| None).collect();
    let mut out_rx: Vec<(usize, Receiver<Vec<u8>>)> = Vec::new();
    for (r, slot) in out_tx.iter_mut().enumerate() {
        if r != me.as_usize() {
            let (tx, rx) = unbounded();
            *slot = Some(tx);
            out_rx.push((r, rx));
        }
    }

    let mut stats = NetworkStats::default();
    let mut held: HeldQueue<HeldItem> = HeldQueue::new();
    let mut outbox: Vec<(RankId, LbWire, usize)> = Vec::new();
    let mut done_notified = false;

    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");

    std::thread::scope(|scope| {
        // Accept thread: handshake inbound connections and spawn one
        // reader per peer stream.
        {
            let halt = Arc::clone(&halt);
            let stop = Arc::clone(&stop);
            let in_tx = in_tx.clone();
            let read_timeout = cfg.read_timeout;
            scope.spawn(move || {
                accept_loop(
                    &listener,
                    num_ranks,
                    read_timeout,
                    &halt,
                    &stop,
                    &in_tx,
                    scope,
                );
            });
        }

        // Writer threads: own connect/reconnect with seeded backoff
        // jitter, drain the peer's frame queue.
        for (peer, rx) in out_rx {
            let halt = Arc::clone(&halt);
            let stop = Arc::clone(&stop);
            let addr = peers[peer];
            let jitter = RngFactory::new(cfg.seed).rank_stream(
                b"sockrtry",
                me.as_usize() as u64,
                peer as u64,
            );
            let wcfg = cfg.clone();
            scope.spawn(move || {
                writer_loop(me, addr, rx, wcfg, jitter, &halt, &stop);
            });
        }

        // ---- main loop: the socket analogue of the parallel worker ----

        macro_rules! flush {
            () => {{
                let batch = std::mem::take(&mut outbox);
                for (to, msg, bytes) in batch {
                    stats.record(bytes);
                    let send_now = start.elapsed().as_secs_f64();
                    for d in emulator.outgoing::<LbRank>(me, to, msg, send_now) {
                        let due = d
                            .not_before
                            .map(|s| start + Duration::from_secs_f64(s))
                            .filter(|when| *when > Instant::now());
                        match due {
                            Some(when) => {
                                held.hold(
                                    when,
                                    if to == me {
                                        HeldItem::Deliver {
                                            from: me,
                                            msg: d.msg,
                                        }
                                    } else {
                                        HeldItem::Send { to, msg: d.msg }
                                    },
                                );
                            }
                            None if to == me => {
                                // Rare self-send: deliver next loop turn.
                                let _ = in_tx.send((me, d.msg));
                            }
                            None => {
                                if let Some(tx) = &out_tx[to.as_usize()] {
                                    let _ = tx.send(encode_frame(&d.msg));
                                }
                            }
                        }
                    }
                }
            }};
        }

        macro_rules! deliver {
            ($from:expr, $msg:expr) => {{
                let now = start.elapsed().as_secs_f64();
                // Crash windows gate delivery, mirroring the simulator's
                // pop-time check (real process kills are the orchestrator's
                // job; plan-driven windows keep single-process parity).
                if emulator.admit($from, me, now) {
                    let mut ctx = Ctx::for_executor(me, now, &mut outbox);
                    rank.on_message(&mut ctx, $from, $msg);
                    let timers = ctx.take_timers();
                    flush!();
                    arm_timers(&mut held, me, timers);
                }
            }};
        }

        // Start the actor.
        {
            let now = start.elapsed().as_secs_f64();
            let mut ctx = Ctx::for_executor(me, now, &mut outbox);
            rank.on_start(&mut ctx);
            let timers = ctx.take_timers();
            flush!();
            arm_timers(&mut held, me, timers);
        }

        let tick = Duration::from_millis(1);
        loop {
            if stop.load(Ordering::SeqCst) || start.elapsed() >= cfg.deadline {
                break;
            }
            // Fire every held event whose time has come.
            while let Some(item) = held.pop_due(Instant::now()) {
                match item {
                    HeldItem::Deliver { from, msg } => deliver!(from, msg),
                    HeldItem::Send { to, msg } => {
                        if let Some(tx) = &out_tx[to.as_usize()] {
                            let _ = tx.send(encode_frame(&msg));
                        }
                    }
                }
            }
            if !done_notified
                && (rank.is_done() || emulator.down_forever(me, start.elapsed().as_secs_f64()))
            {
                // A plan-crashed rank can never finish; report it done so
                // the orchestrator's barrier does not hang on a corpse.
                done_notified = true;
                on_done();
            }
            let wait = match held.next_deadline() {
                Some(when) => when.saturating_duration_since(Instant::now()).min(tick),
                None => tick,
            };
            match in_rx.recv_timeout(wait) {
                Ok((from, msg)) => deliver!(from, msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        halt.store(true, Ordering::SeqCst);
    });

    let finished = rank.is_done();
    SocketRankReport {
        rank,
        network: stats,
        faults: emulator.stats(),
        finished,
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// Arm protocol timers as held self-deliveries (virtual seconds map 1:1
/// onto wall-clock seconds, the parallel executor's convention).
fn arm_timers(held: &mut HeldQueue<HeldItem>, me: RankId, timers: Vec<(f64, LbWire)>) {
    let now = Instant::now();
    for (delay, msg) in timers {
        held.hold(
            now + Duration::from_secs_f64(delay),
            HeldItem::Deliver { from: me, msg },
        );
    }
}

/// Accept inbound connections, handshake them, and spawn a reader per
/// stream. Nonblocking accept polled on a short sleep so shutdown is
/// prompt.
fn accept_loop<'scope>(
    listener: &TcpListener,
    num_ranks: usize,
    read_timeout: Duration,
    halt: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
    in_tx: &Sender<(RankId, LbWire)>,
    scope: &'scope std::thread::Scope<'scope, '_>,
) {
    loop {
        if halt.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_nonblocking(false);
                // Handshake: magic + sender rank, else drop the stream.
                let mut hs = [0u8; 8];
                if read_exact_patient(&mut stream, &mut hs, halt, stop).is_err() {
                    continue;
                }
                let magic = u32::from_le_bytes(hs[0..4].try_into().unwrap());
                let from = u32::from_le_bytes(hs[4..8].try_into().unwrap());
                if magic != HANDSHAKE_MAGIC || from as usize >= num_ranks {
                    continue;
                }
                let from = RankId::new(from);
                let in_tx = in_tx.clone();
                let halt = Arc::clone(halt);
                let stop = Arc::clone(stop);
                scope.spawn(move || reader_loop(stream, from, &in_tx, &halt, &stop));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    }
}

/// `read_exact` that tolerates read timeouts while watching shutdown.
fn read_exact_patient(
    stream: &mut TcpStream,
    buf: &mut [u8],
    halt: &AtomicBool,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if halt.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
            return Err(ErrorKind::Interrupted.into());
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Drain one peer's stream into the inbound channel, frame by frame.
fn reader_loop(
    mut stream: TcpStream,
    from: RankId,
    in_tx: &Sender<(RankId, LbWire)>,
    halt: &AtomicBool,
    stop: &AtomicBool,
) {
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if halt.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed; it reconnects if it has more
            Ok(n) => {
                reader.push(&buf[..n]);
                while let Some(wire) = reader.next_frame() {
                    if in_tx.send((from, wire)).is_err() {
                        return;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Own the outbound stream to one peer: connect (and reconnect) with
/// seeded exponential backoff jitter, handshake, then write queued
/// frames. A frame that fails mid-write is retried on the next
/// connection — duplicate delivery is fine (the transport dedups), and
/// the `Reliable` layer covers anything genuinely lost.
fn writer_loop(
    me: RankId,
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
    cfg: SocketConfig,
    mut jitter: rand::rngs::SmallRng,
    halt: &AtomicBool,
    stop: &AtomicBool,
) {
    let shutting_down = || halt.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst);
    let mut stream: Option<TcpStream> = None;
    let mut backoff = cfg.initial_backoff;
    let mut pending: Option<Vec<u8>> = None;
    loop {
        if shutting_down() {
            return;
        }
        // (Re)connect if needed.
        if stream.is_none() {
            if let Ok(mut s) = TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
                let _ = s.set_nodelay(true);
                let mut hs = [0u8; 8];
                hs[0..4].copy_from_slice(&HANDSHAKE_MAGIC.to_le_bytes());
                hs[4..8].copy_from_slice(&me.as_u32().to_le_bytes());
                if s.write_all(&hs).is_ok() {
                    stream = Some(s);
                    backoff = cfg.initial_backoff;
                }
            }
            if stream.is_none() {
                // Jittered exponential backoff: deterministic per
                // (seed, me, peer) stream, uncorrelated across links.
                let sleep = backoff.mul_f64(0.5 + jitter.gen::<f64>());
                let step = Duration::from_millis(5);
                let mut slept = Duration::ZERO;
                while slept < sleep && !shutting_down() {
                    std::thread::sleep(step.min(sleep - slept));
                    slept += step;
                }
                backoff = (backoff * 2).min(cfg.max_backoff);
                continue;
            }
        }
        // Next frame: the one that failed last time, or a fresh one.
        let frame = match pending.take() {
            Some(f) => f,
            None => match rx.recv_timeout(cfg.read_timeout) {
                Ok(f) => f,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            },
        };
        let s = stream.as_mut().expect("connected above");
        if s.write_all(&frame).is_err() {
            stream = None;
            pending = Some(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::lb::{LbProtocolConfig, PartitionConfig};
    use crate::reliable::RetryConfig;
    use crate::sim::{NetworkModel, Simulator};
    use std::net::Ipv4Addr;
    use tempered_core::distribution::Distribution;
    use tempered_core::ids::TaskId;

    #[test]
    fn frame_roundtrips_through_the_reader() {
        let wires = vec![
            LbWire::Heartbeat,
            LbWire::Ack { seq: 42 },
            LbWire::Raw(super::super::messages::LbMsg::Knock),
        ];
        let mut reader = FrameReader::new();
        for w in &wires {
            reader.push(&encode_frame(w));
        }
        for w in &wires {
            let got = reader.next_frame().expect("frame complete");
            assert_eq!(got.encode(), w.encode());
            assert!(got.verify());
        }
        assert!(reader.next_frame().is_none());
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn partial_reads_reassemble() {
        let wire = LbWire::Ack { seq: 7 };
        let frame = encode_frame(&wire);
        let mut reader = FrameReader::new();
        for b in &frame[..frame.len() - 1] {
            reader.push(&[*b]);
            assert!(
                reader.next_frame().is_none(),
                "must wait for the full frame"
            );
        }
        reader.push(&frame[frame.len() - 1..]);
        let got = reader.next_frame().expect("complete now");
        assert_eq!(got.encode(), wire.encode());
    }

    #[test]
    fn crc_mismatch_surfaces_as_damaged() {
        let wire = LbWire::Ack { seq: 9 };
        let mut frame = encode_frame(&wire);
        let last = frame.len() - 1;
        frame[last] ^= 0x40; // flip a payload bit
        let mut reader = FrameReader::new();
        reader.push(&frame);
        let got = reader.next_frame().expect("frame complete");
        assert!(matches!(got, LbWire::Damaged { .. }));
        assert!(!got.verify(), "damage must be detectable");
    }

    #[test]
    fn oversize_length_prefix_resynchronizes_as_damage() {
        let mut reader = FrameReader::new();
        let mut junk = Vec::new();
        junk.extend_from_slice(&u32::MAX.to_le_bytes());
        junk.extend_from_slice(&0u32.to_le_bytes());
        junk.extend_from_slice(b"garbage");
        reader.push(&junk);
        let got = reader.next_frame().expect("surfaced");
        assert!(matches!(got, LbWire::Damaged { .. }));
        assert!(!got.verify());
        assert_eq!(reader.pending(), 0, "buffer resynchronized");
    }

    /// End-to-end over real loopback sockets, one thread per "process":
    /// the committed assignment must be bit-for-bit the simulator's.
    #[test]
    fn loopback_run_matches_simulator_assignment() {
        let num_ranks = 4usize;
        let seed = 4242u64;
        let per_rank: Vec<Vec<f64>> = (0..num_ranks)
            .map(|r| if r == 0 { vec![1.0; 12] } else { vec![] })
            .collect();
        let dist = Distribution::from_loads(per_rank);
        let cfg = LbProtocolConfig {
            trials: 1,
            iters: 2,
            fanout: 2,
            rounds: 3,
            ..Default::default()
        }
        .hardened(RetryConfig {
            timeout: 2e-3,
            backoff: 2.0,
            max_retries: 12,
            stage_deadline: 10.0,
            ..Default::default()
        })
        .crash_tolerant(HealthConfig {
            period: 5e-3,
            suspicion_threshold: 8.0,
            startup_grace: 0.05,
        })
        .partition_tolerant(PartitionConfig { park_deadline: 1.0 });
        let factory = RngFactory::new(seed);
        let build = |r: usize| {
            let tasks: Vec<(TaskId, f64)> = dist
                .tasks_on(RankId::from(r))
                .iter()
                .map(|t| (t.id, t.load.get()))
                .collect();
            LbRank::new(RankId::from(r), num_ranks, tasks, cfg, factory)
        };

        // Reference: the deterministic simulator.
        let mut sim = Simulator::new(
            (0..num_ranks).map(build).collect(),
            NetworkModel::default(),
            &factory,
        );
        let report = sim.run();
        assert!(report.completed);
        let reference: Vec<Vec<u64>> = sim
            .into_ranks()
            .iter()
            .map(|r| {
                let mut ids: Vec<u64> = r.final_tasks().iter().map(|t| t.id.as_u64()).collect();
                ids.sort_unstable();
                ids
            })
            .collect();

        // Real sockets on loopback.
        let listeners: Vec<TcpListener> = (0..num_ranks)
            .map(|_| TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind"))
            .collect();
        let peers: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut reports: Vec<Option<SocketRankReport>> = (0..num_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (r, listener) in listeners.into_iter().enumerate() {
                let peers = peers.clone();
                let stop = Arc::clone(&stop);
                let done = Arc::clone(&done);
                let rank = build(r);
                handles.push(scope.spawn(move || {
                    run_socket_rank(
                        RankId::from(r),
                        rank,
                        listener,
                        peers,
                        SocketConfig {
                            seed,
                            deadline: Duration::from_secs(30),
                            ..Default::default()
                        },
                        stop,
                        || {
                            done.fetch_add(1, Ordering::SeqCst);
                        },
                    )
                }));
            }
            // Orchestrate in miniature: wait for everyone, then stop.
            let t0 = Instant::now();
            while done.load(Ordering::SeqCst) < num_ranks {
                assert!(t0.elapsed() < Duration::from_secs(30), "ranks hung");
                std::thread::sleep(Duration::from_millis(2));
            }
            stop.store(true, Ordering::SeqCst);
            for (r, h) in handles.into_iter().enumerate() {
                reports[r] = Some(h.join().expect("rank thread"));
            }
        });

        let mut total = 0usize;
        for (r, report) in reports.iter().enumerate() {
            let report = report.as_ref().expect("collected");
            assert!(report.finished, "rank {r} must finish");
            assert!(!report.rank.degraded(), "rank {r} degraded");
            let mut ids: Vec<u64> = report
                .rank
                .final_tasks()
                .iter()
                .map(|t| t.id.as_u64())
                .collect();
            ids.sort_unstable();
            total += ids.len();
            assert_eq!(ids, reference[r], "rank {r} assignment diverged");
        }
        assert_eq!(total, dist.num_tasks());
    }
}
