//! Stage transitions of the [`GossipEngine`]: the typed per-stage state
//! machine (Setup → Gossip → Transfer → Evaluate → Commit) and the
//! handlers that move between stages as termination-detection epochs
//! close.
//!
//! Each stage that carries data owns it in its [`StageState`] variant —
//! gossip knowledge and the iteration's gossip RNG live only while the
//! gossip stage is active and are *moved* into the transfer stage, so a
//! stale round's state cannot leak across iterations by construction.

use super::super::messages::{LbMsg, TaskEntry};
use super::{Command, GossipEngine, Stage};
use crate::collective::LoadSummary;
use crate::membership::View;
use rand::rngs::SmallRng;
use std::collections::HashMap;
use tempered_core::gossip::{sample_fanout_targets, TargetExclusions};
use tempered_core::ids::{RankId, TaskId};
use tempered_core::knowledge::Knowledge;
use tempered_core::load::Load;
use tempered_core::task::Task;
use tempered_core::transfer::transfer_stage;
use tempered_obs::EventKind;

/// Typed per-stage state. Variants that need working data own it.
#[derive(Debug)]
pub(super) enum StageState {
    /// Waiting for the setup allreduce; no working state yet.
    Setup,
    /// Gossip rounds in progress.
    Gossip(GossipState),
    /// Proposal exchange in progress (knowledge was consumed by
    /// [`transfer_stage`] at entry).
    Transfer,
    /// Waiting for the evaluation allreduce.
    Evaluate,
    /// Lazy migration in progress.
    Commit,
    /// Finished (normally or by abort).
    Done,
}

impl StageState {
    /// The externally visible [`Stage`] this state denotes. The transfer
    /// stage keeps its historical span label `proposals` for trace
    /// compatibility.
    pub(super) fn stage(&self) -> Stage {
        match self {
            StageState::Setup => Stage::Setup,
            StageState::Gossip(_) => Stage::Gossip,
            StageState::Transfer => Stage::Proposals,
            StageState::Evaluate => Stage::Evaluate,
            StageState::Commit => Stage::Commit,
            StageState::Done => Stage::Done,
        }
    }
}

/// Working state of the gossip stage for one `(trial, iteration)`.
#[derive(Debug)]
pub(super) struct GossipState {
    /// Accumulated `S^p` + `LOAD^p()` (Algorithm 1).
    pub(super) knowledge: Knowledge,
    /// Current round, 1-based.
    pub(super) round: u32,
    /// Whether any message in the current round taught us a new
    /// underloaded rank (Algorithm 1's forwarding condition, evaluated
    /// per round instead of per message).
    pub(super) grew: bool,
    /// The iteration's gossip stream — the *same* `(b"gossip", rank,
    /// sub-epoch)` stream the analysis-mode driver hands to
    /// [`sample_fanout_targets`], advanced across rounds exactly as the
    /// sync loop advances it, so target draws match draw for draw.
    pub(super) rng: SmallRng,
}

fn pairs_of(k: &Knowledge) -> std::sync::Arc<[(RankId, f64)]> {
    k.entries().map(|(r, l)| (r, l.get())).collect()
}

/// [`TargetExclusions`] restricted to the membership view's survivors:
/// dead ranks count as already-known, so the fanout draw resamples over
/// live ranks only. In the initial view (nobody dead) this is exactly
/// the plain [`Knowledge`] exclusion set, so the draw sequence — and
/// with it the sync ↔ async equivalence — is bit-identical on the clean
/// path.
struct LiveTargets<'a> {
    knowledge: &'a Knowledge,
    view: &'a View,
}

impl TargetExclusions for LiveTargets<'_> {
    fn known(&self) -> usize {
        self.knowledge.len()
            + self
                .view
                .dead()
                .iter()
                .filter(|r| !self.knowledge.contains(**r))
                .count()
    }

    fn knows(&self, rank: RankId) -> bool {
        self.knowledge.contains(rank) || !self.view.is_live(rank)
    }
}

impl GossipEngine {
    // ---- stage transitions -----------------------------------------------

    pub(super) fn enter_gossip(&mut self, out: &mut Vec<Command>) {
        self.iter_transfers = 0;
        self.iter_rejected = 0;
        self.canonicalize_current();
        let rng = self
            .factory
            .rank_stream(b"gossip", self.me.as_u32() as u64, self.sub_epoch());
        self.state = StageState::Gossip(GossipState {
            knowledge: Knowledge::new(),
            round: 0,
            grew: false,
            rng,
        });
        self.enter_gossip_round(out, 1);
    }

    fn enter_gossip_round(&mut self, out: &mut Vec<Command>, round: u32) {
        out.push(Command::OpenSpan(EventKind::GossipRound {
            trial: self.trial as u32,
            iter: self.iter as u32,
            round,
        }));
        let epoch = self.gossip_round_epoch(round);
        self.det.start_epoch(epoch);
        out.push(Command::AdvanceEpoch { epoch });

        // Algorithm 1, stepped: round 1 is seeded by the underloaded
        // ranks (lines 6–12); round r+1 is sent by exactly the ranks
        // whose knowledge grew during round r (lines 18–24). All sends
        // happen at round entry, over the complete, canonicalized union
        // of the previous round's receipts.
        let mut gs = match std::mem::replace(&mut self.state, StageState::Done) {
            StageState::Gossip(gs) => gs,
            s => unreachable!("gossip round entered from {:?}", s.stage()),
        };
        gs.round = round;
        let sending = if round == 1 {
            let my_load = self.my_load();
            if my_load < self.l_ave {
                gs.knowledge.insert(self.me, Load::new(my_load));
                true
            } else {
                false
            }
        } else {
            gs.grew
        };
        gs.grew = false;
        gs.knowledge.canonicalize();

        let mut sends = Vec::new();
        if sending {
            let pairs = pairs_of(&gs.knowledge);
            let mut targets = Vec::new();
            let exclusions = LiveTargets {
                knowledge: &gs.knowledge,
                view: &self.view,
            };
            sample_fanout_targets(
                &mut gs.rng,
                self.num_ranks,
                self.me,
                &exclusions,
                self.cfg.fanout,
                &mut targets,
            );
            for target in targets {
                sends.push((
                    target,
                    LbMsg::Gossip {
                        epoch,
                        round,
                        pairs: pairs.clone(),
                    },
                ));
            }
        }
        self.state = StageState::Gossip(gs);
        for (to, msg) in sends {
            self.send_basic(out, to, msg);
        }

        // Coordinator launches termination detection for this epoch.
        let kick = self.det.kick();
        self.emit_td(out, kick);
        self.replay_buffered(out);
    }

    pub(super) fn on_gossip(&mut self, round: u32, pairs: std::sync::Arc<[(RankId, f64)]>) {
        self.det.on_basic_recv();
        match &mut self.state {
            StageState::Gossip(gs) => {
                debug_assert_eq!(round, gs.round);
                let merged = gs
                    .knowledge
                    .merge_from(pairs.iter().map(|&(r, l)| (r, Load::new(l))));
                if merged > 0 {
                    gs.grew = true;
                }
            }
            s => debug_assert!(false, "gossip received in stage {:?}", s.stage()),
        }
    }

    pub(super) fn on_epoch_terminated(&mut self, out: &mut Vec<Command>, epoch: u64, sent: u64) {
        out.push(Command::Instant(EventKind::EpochTerminated { epoch, sent }));
        match &self.state {
            StageState::Gossip(gs) => {
                debug_assert_eq!(epoch, self.gossip_round_epoch(gs.round));
                // `sent` is carried by the termination broadcast, so all
                // ranks agree on it: if the round moved no messages the
                // remaining rounds are provably empty and every rank
                // skips them in lockstep.
                let round = gs.round;
                if sent == 0 || round as usize >= self.cfg.rounds {
                    self.run_transfer(out);
                } else {
                    self.enter_gossip_round(out, round + 1);
                }
            }
            StageState::Transfer => {
                debug_assert_eq!(epoch, self.proposal_epoch());
                self.enter_evaluate(out);
            }
            StageState::Commit => {
                debug_assert_eq!(epoch, self.commit_epoch());
                self.state = StageState::Done;
                self.done = true;
                out.push(Command::Finished);
            }
            s => panic!(
                "unexpected epoch {epoch} termination in stage {:?}",
                s.stage()
            ),
        }
    }

    fn run_transfer(&mut self, out: &mut Vec<Command>) {
        let mut gs = match std::mem::replace(&mut self.state, StageState::Transfer) {
            StageState::Gossip(gs) => gs,
            s => unreachable!("transfer entered from {:?}", s.stage()),
        };
        out.push(Command::OpenSpan(EventKind::LbStage {
            stage: "proposals",
            trial: self.trial as u32,
            iter: self.iter as u32,
        }));
        let epoch = self.proposal_epoch();
        self.det.start_epoch(epoch);
        out.push(Command::AdvanceEpoch { epoch });
        self.canonicalize_current();
        gs.knowledge.canonicalize();

        // Algorithm 2, locally — literally the same kernel the
        // analysis-mode driver runs, fed the same canonicalized inputs
        // and the same random stream.
        let my_load = self.my_load();
        let threshold = self.l_ave * self.cfg.transfer.threshold_h;
        if my_load > threshold && !gs.knowledge.is_empty() {
            let tasks: Vec<Task> = self
                .current
                .iter()
                .map(|t| Task::new(t.id, t.load))
                .collect();
            let mut rng =
                self.factory
                    .rank_stream(b"transfer", self.me.as_u32() as u64, self.sub_epoch());
            let result = transfer_stage(
                self.me,
                &tasks,
                &mut gs.knowledge,
                Load::new(self.l_ave),
                &self.cfg.transfer,
                &mut rng,
            );
            self.iter_transfers = result.accepted;
            self.iter_rejected = result.rejected;

            // Remove proposed tasks locally and inform each recipient of
            // its new logical tasks (lazy transfer — no data movement).
            let mut by_target: HashMap<RankId, Vec<TaskEntry>> = HashMap::new();
            for m in &result.proposals {
                let idx = self
                    .current
                    .iter()
                    .position(|t| t.id == m.task)
                    .expect("proposed task is resident");
                let entry = self.current.swap_remove(idx);
                by_target.entry(m.to).or_default().push(entry);
            }
            // Deterministic send order regardless of hash state.
            let mut targets: Vec<(RankId, Vec<TaskEntry>)> = by_target.into_iter().collect();
            targets.sort_by_key(|(r, _)| *r);
            for (to, tasks) in targets {
                self.send_basic(out, to, LbMsg::Propose { epoch, tasks });
            }
        }

        let kick = self.det.kick();
        self.emit_td(out, kick);
        self.replay_buffered(out);
    }

    pub(super) fn on_propose(
        &mut self,
        out: &mut Vec<Command>,
        from: RankId,
        tasks: Vec<TaskEntry>,
    ) {
        self.det.on_basic_recv();
        if !self.cfg.use_nacks {
            self.current.extend(tasks);
            return;
        }
        // Menon-style NACKs: accept while staying under the average;
        // bounce the rest back to the proposer.
        let mut load = self.my_load();
        let mut rejected = Vec::new();
        for t in tasks {
            if load + t.load < self.l_ave {
                load += t.load;
                self.current.push(t);
            } else {
                rejected.push(t);
            }
        }
        if !rejected.is_empty() {
            let epoch = self.det.epoch();
            self.send_basic(out, from, LbMsg::ProposeReply { epoch, rejected });
        }
    }

    pub(super) fn on_propose_reply(&mut self, rejected: Vec<TaskEntry>) {
        self.det.on_basic_recv();
        self.nacks_received += rejected.len();
        // Bounced tasks revert to this rank for the rest of the iteration.
        self.current.extend(rejected);
    }

    fn enter_evaluate(&mut self, out: &mut Vec<Command>) {
        self.state = StageState::Evaluate;
        out.push(Command::OpenSpan(EventKind::LbStage {
            stage: "evaluate",
            trial: self.trial as u32,
            iter: self.iter as u32,
        }));
        self.canonicalize_current();
        let slot = self.eval_slot();
        let summary = LoadSummary::of(self.my_load());
        self.contribute(out, slot, summary);
        // Note: buffered messages for the next gossip epoch stay buffered;
        // they replay when the epoch starts.
    }

    pub(super) fn advance_iteration(&mut self, out: &mut Vec<Command>) {
        self.iter += 1;
        if self.iter >= self.cfg.iters {
            self.iter = 0;
            self.trial += 1;
            if self.trial >= self.cfg.trials {
                self.enter_commit(out);
                return;
            }
            // Algorithm 3 line 3: each trial restarts from the input
            // assignment.
            self.current = self.original.clone();
        }
        self.enter_gossip(out);
    }

    fn enter_commit(&mut self, out: &mut Vec<Command>) {
        self.state = StageState::Commit;
        out.push(Command::OpenSpan(EventKind::LbStage {
            stage: "commit",
            trial: self.trial as u32,
            iter: self.iter as u32,
        }));
        let epoch = self.commit_epoch();
        self.det.start_epoch(epoch);
        out.push(Command::AdvanceEpoch { epoch });
        // Adopt the best proposal; fetch data for tasks whose home is
        // elsewhere (lazy migration).
        self.current = self.best.clone();
        self.canonicalize_current();
        let mut by_home: HashMap<RankId, Vec<TaskId>> = HashMap::new();
        for t in &self.current {
            if t.home != self.me {
                by_home.entry(t.home).or_default().push(t.id);
            }
        }
        let mut homes: Vec<(RankId, Vec<TaskId>)> = by_home.into_iter().collect();
        homes.sort_by_key(|(r, _)| *r);
        for (home, tasks) in homes {
            self.migrations_in += tasks.len();
            self.send_basic(out, home, LbMsg::Fetch { epoch, tasks });
        }

        let kick = self.det.kick();
        self.emit_td(out, kick);
        self.replay_buffered(out);
    }

    pub(super) fn on_fetch(&mut self, out: &mut Vec<Command>, from: RankId, tasks: Vec<TaskId>) {
        self.det.on_basic_recv();
        self.migrations_out += tasks.len();
        let epoch = self.commit_epoch();
        self.send_basic(out, from, LbMsg::TaskData { epoch, tasks });
    }

    pub(super) fn on_task_data(&mut self, _tasks: Vec<TaskId>) {
        self.det.on_basic_recv();
    }
}
