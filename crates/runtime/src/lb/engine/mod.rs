//! Sans-I/O engine of the asynchronous LB protocol.
//!
//! [`GossipEngine`] is a pure, deterministic state machine: it consumes
//! protocol messages ([`super::messages::LbMsg`]) and emits a list of
//! [`Command`]s for the embedding driver to interpret. It knows nothing
//! about channels, retries, clocks, recorders, or executors — those live
//! in the [`super::transport`] stack and in the drivers (the
//! discrete-event [`crate::sim::Simulator`], the threaded
//! [`crate::parallel`] executor, and the zero-latency
//! [`super::driver::LocalRunner`]). The stage flow is:
//!
//! ```text
//! Setup      allreduce (Σ load, max load) → every rank knows ℓ_ave, ℓ_max
//! ┌─ per (trial, iteration) ──────────────────────────────────────────┐
//! │ Gossip     Algorithm 1, barrier-free; each message round is its    │
//! │            own TD epoch (round r of iteration j lives in epoch     │
//! │            1 + j·(k+1) + (r−1)), so a round's sends are a pure     │
//! │            function of the previous round's *complete* receipts    │
//! │ Transfer   Algorithm 2 locally; lazy-transfer messages inform      │
//! │            recipients of their new logical tasks (epoch … + k)     │
//! │ Evaluate   allreduce of proposed max load → identical I_proposed   │
//! │            at every rank → symmetric best-tracking, no coordinator │
//! └────────────────────────────────────────────────────────────────────┘
//! Commit     revert to best proposal; final owners fetch task data
//!            from home ranks (lazy migration); last TD epoch
//! Done
//! ```
//!
//! # Sync ↔ async equivalence by construction
//!
//! The engine's algorithmic kernels are the *same functions* the
//! analysis-mode driver ([`tempered_core::refine::refine`]) calls:
//! [`tempered_core::gossip::sample_fanout_targets`] for gossip targets
//! and [`tempered_core::transfer::transfer_stage`] for proposals, seeded
//! from the same `(label, rank, sub-epoch)` random streams and fed the
//! same canonicalized state (knowledge sorted by rank, resident tasks
//! sorted by id). An engine run on a fault-free driver therefore commits
//! the *exact* distribution `refine` computes — bit for bit — which the
//! `equivalence` integration test asserts for both TemperedLB and
//! GrapevineLB configurations.
//!
//! # Determinism under reordering
//!
//! Stepping gossip by TD epoch (instead of forwarding reactively on
//! receipt) plus canonicalizing order-sensitive state at every stage
//! boundary makes the final assignment a pure function of
//! `(input, config, seed)`, independent of message timing, interleaving,
//! or executor. This is what lets the chaos harness assert that a faulted
//! run converges to the *same* assignment as a fault-free one. (The NACK
//! variant is excluded: which proposals a recipient bounces depends
//! inherently on arrival order.)

mod stages;

use super::messages::{LbMsg, TaskEntry};
use crate::collective::{LoadSummary, ReduceSlot, Tree};
use crate::membership::View;
use crate::termination::{TdMsg, TdOutcome, TerminationDetector};
use stages::StageState;
use std::collections::{BTreeSet, HashMap};
use tempered_core::ids::{RankId, TaskId};
use tempered_core::refine::RefineConfig;
use tempered_core::rng::RngFactory;
use tempered_core::transfer::TransferConfig;
use tempered_obs::EventKind;

/// An effect requested by the engine.
///
/// The engine never performs I/O; each input (start, message) yields a
/// list of commands that the embedding driver interprets — transmission
/// through a [`super::transport::Transport`] stack, span/instant
/// recording, stage-deadline arming.
#[derive(Clone, Debug)]
pub enum Command {
    /// Transmit a protocol message to `to`.
    Send {
        /// Destination rank.
        to: RankId,
        /// The protocol payload.
        msg: LbMsg,
    },
    /// The engine opened termination-detection epoch `epoch` (a gossip
    /// round, the proposal exchange, or the commit). Informational:
    /// drivers may use it for diagnostics or epoch-aware scheduling.
    AdvanceEpoch {
        /// The epoch just started.
        epoch: u64,
    },
    /// A stage or round boundary was crossed: open an observability span
    /// (closing any previous one) and re-arm stage liveness deadlines.
    OpenSpan(EventKind),
    /// Record an instantaneous observability event.
    Instant(EventKind),
    /// The protocol reached `Done` on this rank: close the open span and
    /// flush end-of-run metrics.
    Finished,
}

/// Algorithmic knobs of the protocol engine.
///
/// Exactly the parameters of [`RefineConfig`] — the analysis-mode
/// configuration is the single source of truth, and [`From`] is the only
/// conversion — plus the NACK switch that only exists in the
/// message-driven execution. `GossipConfig`'s mode and budget caps have
/// no async interpretation: the engine always runs round-based gossip,
/// unbounded.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Independent trials (`n_trials`).
    pub trials: usize,
    /// Iterations per trial (`n_iters`).
    pub iters: usize,
    /// Gossip fanout `f`.
    pub fanout: usize,
    /// Gossip round limit `k`.
    pub rounds: usize,
    /// Transfer-stage knobs (criterion, CMF, ordering, threshold).
    pub transfer: TransferConfig,
    /// Enable Menon et al.'s negative acknowledgements: recipients bounce
    /// proposed tasks that would push them past `ℓ_ave`. The paper drops
    /// this mechanism (§V-A); the flag exists to measure that choice.
    pub use_nacks: bool,
    /// Quorum-gate view changes (partition tolerance): after a view
    /// change that leaves this rank's live component without a strict
    /// majority of the original ranks, the engine *parks* — reverts to
    /// the original placement and goes inert instead of restarting — so
    /// a minority component can never commit (split-brain prevention).
    /// Off by default: the pure crash-stop interpretation restarts on
    /// any survivor set.
    pub quorum: bool,
}

impl From<RefineConfig> for EngineConfig {
    fn from(cfg: RefineConfig) -> Self {
        EngineConfig {
            trials: cfg.trials,
            iters: cfg.iters,
            fanout: cfg.gossip.fanout,
            rounds: cfg.gossip.rounds,
            transfer: cfg.transfer,
            use_nacks: false,
            quorum: false,
        }
    }
}

impl EngineConfig {
    /// TemperedLB as run for the paper's EMPIRE results.
    pub fn tempered() -> Self {
        RefineConfig::tempered().into()
    }

    /// The original GrapevineLB: single trial, single iteration, original
    /// criterion and CMF, arbitrary ordering.
    pub fn grapevine() -> Self {
        RefineConfig::grapevine().into()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::tempered()
    }
}

/// Protocol stage (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Waiting for the initial allreduce.
    Setup,
    /// Gossip epoch in progress.
    Gossip,
    /// Proposal epoch in progress.
    Proposals,
    /// Waiting for the evaluation allreduce.
    Evaluate,
    /// Commit epoch (lazy migration) in progress.
    Commit,
    /// Finished.
    Done,
}

/// Static span label for a stage.
pub(crate) fn stage_label(stage: Stage) -> &'static str {
    match stage {
        Stage::Setup => "setup",
        Stage::Gossip => "gossip",
        Stage::Proposals => "proposals",
        Stage::Evaluate => "evaluate",
        Stage::Commit => "commit",
        Stage::Done => "done",
    }
}

/// One `(trial, iteration, imbalance)` record, mirroring
/// `tempered_core::refine::IterationRecord` for the async path.
#[derive(Clone, Copy, Debug)]
pub struct AsyncIterationRecord {
    /// Trial index (0-based).
    pub trial: usize,
    /// Iteration index (1-based).
    pub iteration: usize,
    /// Globally agreed imbalance after this iteration's proposals.
    pub imbalance: f64,
    /// Transfers this rank accepted in the iteration.
    pub local_transfers: usize,
    /// Candidates this rank rejected in the iteration.
    pub local_rejected: usize,
}

/// The per-rank protocol engine: a pure, deterministic state machine.
#[derive(Debug)]
pub struct GossipEngine {
    me: RankId,
    num_ranks: usize,
    cfg: EngineConfig,
    factory: RngFactory,
    /// Collective tree over *live-rank indices* (root = index 0). With
    /// no dead ranks, live index == rank id: the original full tree.
    tree: Tree,
    det: TerminationDetector,

    // Membership: the current view and its sorted survivor list. Every
    // TD epoch is offset by `view.epoch_base()` and every collective
    // slot is stamped with the generation, so cross-view traffic is
    // recognizably stale (see `is_stale`) and restarts cannot mix state.
    view: View,
    live: Vec<RankId>,

    // Task state.
    original: Vec<TaskEntry>,
    current: Vec<TaskEntry>,
    best: Vec<TaskEntry>,

    // Collective state.
    slots: HashMap<u32, ReduceSlot>,

    // Globals agreed in Setup.
    l_ave: f64,
    initial_imbalance: f64,
    best_imbalance: f64,

    // Iteration cursor and typed per-stage state.
    trial: usize,
    iter: usize, // 0-based internally
    state: StageState,

    // Epoch-stamped buffering of early messages.
    buffered: Vec<(RankId, LbMsg)>,

    // Statistics.
    records: Vec<AsyncIterationRecord>,
    migrations_in: usize,
    migrations_out: usize,
    nacks_received: usize,
    iter_transfers: usize,
    iter_rejected: usize,

    done: bool,
    /// Parked: this rank's live component lost quorum under a partition
    /// ([`EngineConfig::quorum`]). The engine is inert and read-only —
    /// original placement, no sends, no commits — until a heal readmits
    /// it (mid-run [`LbMsg::View`] flood or post-commit [`LbMsg::Heal`]
    /// offer) or the driver's park deadline finishes it as-is.
    parked: bool,
}

impl GossipEngine {
    /// Create the engine for `me` with its resident tasks.
    pub fn new(
        me: RankId,
        num_ranks: usize,
        tasks: Vec<(TaskId, f64)>,
        cfg: EngineConfig,
        factory: RngFactory,
    ) -> Self {
        assert!(cfg.rounds >= 1, "gossip needs at least one round");
        let original: Vec<TaskEntry> = tasks
            .into_iter()
            .map(|(id, load)| TaskEntry { id, load, home: me })
            .collect();
        GossipEngine {
            me,
            num_ranks,
            factory,
            tree: Tree::new(num_ranks, RankId::new(0)),
            det: TerminationDetector::new(me, num_ranks),
            view: View::new(num_ranks),
            live: (0..num_ranks).map(RankId::from).collect(),
            current: original.clone(),
            best: original.clone(),
            original,
            slots: HashMap::new(),
            l_ave: 0.0,
            initial_imbalance: 0.0,
            best_imbalance: f64::INFINITY,
            trial: 0,
            iter: 0,
            state: StageState::Setup,
            cfg,
            buffered: Vec::new(),
            records: Vec::new(),
            migrations_in: 0,
            migrations_out: 0,
            nacks_received: 0,
            iter_transfers: 0,
            iter_rejected: 0,
            done: false,
            parked: false,
        }
    }

    /// Kick off the protocol: contributes to the setup allreduce.
    pub fn start(&mut self) -> Vec<Command> {
        let mut out = Vec::new();
        out.push(Command::OpenSpan(EventKind::LbStage {
            stage: "setup",
            trial: 0,
            iter: 0,
        }));
        let summary = LoadSummary::of(self.my_load());
        let slot = self.setup_slot();
        self.contribute(&mut out, slot, summary);
        out
    }

    /// Declare `dead` ranks crashed — locally detected by the driver's
    /// failure detector. If the union grows this engine's view, the old
    /// view's epochs are fenced, the merged view is re-broadcast (a
    /// convergent flood), and the protocol restarts from Setup on the
    /// surviving ranks — or parks, if [`EngineConfig::quorum`] is on and
    /// the survivors lost their majority. A finished engine keeps its
    /// committed result and ignores view changes.
    pub fn on_view(&mut self, dead: &BTreeSet<RankId>) -> Vec<Command> {
        let mut out = Vec::new();
        let base = self.view.base_gen();
        self.handle_view(&mut out, base, dead);
        out
    }

    /// Leader-side partition heal: re-admit `rejoined` ranks (typically a
    /// parked rank whose [`LbMsg::Knock`] just got through, proving the
    /// path works again). Bumps the view's heal fence so the healed
    /// generation dominates every generation either side ever used, then
    /// either floods the healed view and restarts on the grown live set
    /// (mid-run) or sends the rejoined ranks a [`LbMsg::Heal`] offer so
    /// they stand down in agreement with the committed result
    /// (post-commit). The caller is responsible for the leader check.
    pub fn on_heal(&mut self, rejoined: &BTreeSet<RankId>) -> Vec<Command> {
        let mut out = Vec::new();
        self.handle_heal(&mut out, rejoined);
        out
    }

    /// Park without a view change of our own: the driver saw a View
    /// naming *this* rank dead — some component fenced us out and moved
    /// on (we were warm-restarted, or cut off before we could suspect
    /// anyone ourselves). Whatever our own view says, we are effectively
    /// on the wrong side of a partition: go inert read-only and let the
    /// knock/heal path decide re-admission. No-op once done or already
    /// parked.
    pub fn park_self(&mut self) -> Vec<Command> {
        let mut out = Vec::new();
        if !self.done && !self.parked {
            self.park(&mut out);
        }
        out
    }

    /// Feed one delivered protocol message (transport layer already
    /// stripped) and collect the resulting effects.
    pub fn on_message(&mut self, from: RankId, msg: LbMsg) -> Vec<Command> {
        let mut out = Vec::new();
        self.receive(&mut out, from, msg);
        out
    }

    /// [`GossipEngine::on_message`] variant appending into a caller-owned
    /// buffer, letting hot drivers reuse one allocation across messages.
    pub fn on_message_into(&mut self, out: &mut Vec<Command>, from: RankId, msg: LbMsg) {
        self.receive(out, from, msg);
    }

    /// Abandon the protocol (driver-detected delivery failure: retry
    /// budget exhausted or stage deadline missed). Before commit the rank
    /// reverts to its input tasks — the only assignment it can adopt
    /// without coordination. At commit the globally-agreed best is kept:
    /// the logical assignment was already fixed by the evaluation
    /// allreduce, and reverting unilaterally would desynchronize it.
    /// Returns the label of the stage that was abandoned.
    pub fn abort(&mut self) -> &'static str {
        let label = stage_label(self.stage());
        if !self.done {
            if !matches!(self.stage(), Stage::Commit | Stage::Done) {
                self.current = self.original.clone();
            }
            self.state = StageState::Done;
            self.done = true;
        }
        label
    }

    // ---- accessors -------------------------------------------------------

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.state.stage()
    }

    /// Whether the protocol has finished on this rank.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether this rank is parked (quorum-less under a partition).
    /// Remains `true` on a rank that finished read-only via the park
    /// deadline, for end-of-run accounting; cleared by a heal.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// The park deadline passed with no heal: finish read-only on the
    /// original placement. Safe unconditionally — a quorum-less
    /// component never committed anything this rank could disagree with,
    /// and the majority (if any) committed without reference to this
    /// rank's tasks.
    pub fn finish_parked(&mut self) -> Vec<Command> {
        let mut out = Vec::new();
        if self.done || !self.parked {
            return out;
        }
        self.state = StageState::Done;
        self.done = true;
        out.push(Command::Instant(EventKind::Marker("park_deadline")));
        out.push(Command::Finished);
        out
    }

    /// The engine's current membership view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// This rank's final task set `(id, load, home)` after the protocol.
    pub fn final_tasks(&self) -> &[TaskEntry] {
        &self.current
    }

    /// Per-iteration records (symmetrically identical across ranks except
    /// for the local transfer counters).
    pub fn records(&self) -> &[AsyncIterationRecord] {
        &self.records
    }

    /// Initial imbalance (valid after Setup).
    pub fn initial_imbalance(&self) -> f64 {
        self.initial_imbalance
    }

    /// Best imbalance seen (valid after the run).
    pub fn best_imbalance(&self) -> f64 {
        self.best_imbalance
    }

    /// Tasks this rank fetched at commit (real migrations in).
    pub fn migrations_in(&self) -> usize {
        self.migrations_in
    }

    /// Tasks fetched *from* this rank at commit (real migrations out).
    pub fn migrations_out(&self) -> usize {
        self.migrations_out
    }

    /// Proposed tasks bounced back by NACKs across the whole run
    /// (always 0 unless [`EngineConfig::use_nacks`]).
    pub fn nacks_received(&self) -> usize {
        self.nacks_received
    }

    fn my_load(&self) -> f64 {
        self.current.iter().map(|t| t.load).sum()
    }

    // ---- epoch numbering -------------------------------------------------
    //
    // Within a view, epoch `base` is reserved for setup, where `base` is
    // the view's epoch base (`generation × VIEW_EPOCH_STRIDE`; 0 for the
    // initial view). Each (trial, iteration) owns a contiguous block of
    // `rounds + 1` epochs above the base: one per gossip round plus one
    // for the proposal exchange. Commit takes the single epoch after the
    // last block. Early-exited gossip rounds leave their epoch numbers
    // unused — TD epochs need not be consecutive, only unique and
    // globally ordered. A view change moves the base past every epoch of
    // every older view, so stale traffic is recognizable by epoch alone.

    fn epoch_stride(&self) -> u64 {
        self.cfg.rounds as u64 + 1
    }

    fn iter_base(&self) -> u64 {
        (self.trial * self.cfg.iters + self.iter) as u64 * self.epoch_stride()
    }

    fn gossip_round_epoch(&self, round: u32) -> u64 {
        self.view.epoch_base() + 1 + self.iter_base() + (round as u64 - 1)
    }

    fn proposal_epoch(&self) -> u64 {
        self.view.epoch_base() + 1 + self.iter_base() + self.cfg.rounds as u64
    }

    fn commit_epoch(&self) -> u64 {
        self.view.epoch_base() + 1 + (self.cfg.trials * self.cfg.iters) as u64 * self.epoch_stride()
    }

    // Collective slots are stamped with the view generation in the high
    // 16 bits; the low 16 bits are the within-view slot (0 = setup,
    // `1 + trial·n_iters + iter` = that iteration's evaluation).

    fn view_slot(&self, local: u32) -> u32 {
        debug_assert!(local < 1 << 16, "per-view slot space is 16 bits");
        ((self.view.generation() as u32) << 16) | local
    }

    fn slot_generation(slot: u32) -> u64 {
        (slot >> 16) as u64
    }

    fn setup_slot(&self) -> u32 {
        self.view_slot(0)
    }

    fn eval_slot(&self) -> u32 {
        self.view_slot(1 + (self.trial * self.cfg.iters + self.iter) as u32)
    }

    /// The random sub-stream namespace for the current `(trial, iter)` —
    /// the same derivation `tempered_core::refine::refine` uses with
    /// invocation epoch 0 (callers namespace repeated LB invocations by
    /// deriving the factory itself), so gossip targets and CMF draws
    /// match the analysis mode draw for draw.
    fn sub_epoch(&self) -> u64 {
        (((self.trial as u64) << 10) | (self.iter as u64 + 1)).wrapping_mul(0x9E37_79B9)
    }

    // ---- canonicalization ------------------------------------------------

    /// Sort resident tasks by id. Proposals extend `current` in arrival
    /// order; sorting at stage boundaries makes load sums (FP!) and
    /// transfer-stage iteration order timing-independent.
    fn canonicalize_current(&mut self) {
        self.current.sort_by_key(|t| t.id);
    }

    // ---- send helpers ----------------------------------------------------

    fn send_basic(&mut self, out: &mut Vec<Command>, to: RankId, msg: LbMsg) {
        debug_assert!(msg.basic_epoch().is_some(), "basic send of control msg");
        // Counted once here; transport-layer retransmissions of the same
        // sequence number are invisible to termination detection.
        self.det.on_basic_send();
        out.push(Command::Send { to, msg });
    }

    fn send_ctrl(&mut self, out: &mut Vec<Command>, to: RankId, msg: LbMsg) {
        out.push(Command::Send { to, msg });
    }

    fn emit_td(&mut self, out: &mut Vec<Command>, outcome: TdOutcome) {
        for s in outcome.sends {
            self.send_ctrl(out, s.to, LbMsg::Td(s.msg));
        }
        if let Some(epoch) = outcome.terminated_epoch {
            self.on_epoch_terminated(out, epoch, outcome.terminated_sent);
        }
    }

    // ---- collectives -----------------------------------------------------
    //
    // The collective tree spans *live-rank indices*, not rank ids: after
    // a view change the survivors renumber themselves 0..num_live by
    // sorted rank id and rebuild a dense binary tree over those indices.
    // In the initial view (nobody dead) index == id, so the mapping is
    // the identity and the clean path is bit-identical to the pre-fault
    // protocol.

    fn live_index(&self) -> RankId {
        let idx = self
            .live
            .binary_search(&self.me)
            .expect("engine rank must be live in its own view");
        RankId::from(idx)
    }

    fn coll_parent(&self) -> Option<RankId> {
        self.tree
            .parent(self.live_index())
            .map(|p| self.live[p.as_usize()])
    }

    fn coll_children(&self) -> Vec<RankId> {
        self.tree
            .children(self.live_index())
            .into_iter()
            .map(|c| self.live[c.as_usize()])
            .collect()
    }

    fn slot_mut(&mut self, slot: u32) -> &mut ReduceSlot {
        let children = self.coll_children().len();
        self.slots
            .entry(slot)
            .or_insert_with(|| ReduceSlot::new(children))
    }

    fn contribute(&mut self, out: &mut Vec<Command>, slot: u32, value: LoadSummary) {
        if let Some(done) = self.slot_mut(slot).contribute(value) {
            self.reduce_complete(out, slot, done);
        }
    }

    fn reduce_complete(&mut self, out: &mut Vec<Command>, slot: u32, summary: LoadSummary) {
        match self.coll_parent() {
            Some(parent) => {
                self.send_ctrl(out, parent, LbMsg::ReduceUp { slot, summary });
            }
            None => {
                // Root: broadcast the result and consume it locally.
                self.broadcast_down(out, slot, summary);
                self.on_reduce_result(out, slot, summary);
            }
        }
    }

    fn broadcast_down(&mut self, out: &mut Vec<Command>, slot: u32, summary: LoadSummary) {
        for child in self.coll_children() {
            self.send_ctrl(out, child, LbMsg::ReduceDown { slot, summary });
        }
    }

    fn on_reduce_result(&mut self, out: &mut Vec<Command>, slot: u32, summary: LoadSummary) {
        if slot == self.setup_slot() {
            // Setup complete: everyone now knows ℓ_ave / ℓ_max.
            debug_assert_eq!(self.stage(), Stage::Setup);
            self.l_ave = summary.average();
            self.initial_imbalance = summary.imbalance();
            self.best_imbalance = summary.imbalance();
            self.enter_gossip(out);
        } else {
            debug_assert_eq!(self.stage(), Stage::Evaluate);
            debug_assert_eq!(slot, self.eval_slot());
            let imbalance = summary.imbalance();
            self.records.push(AsyncIterationRecord {
                trial: self.trial,
                iteration: self.iter + 1,
                imbalance,
                local_transfers: self.iter_transfers,
                local_rejected: self.iter_rejected,
            });
            if imbalance < self.best_imbalance {
                self.best_imbalance = imbalance;
                self.best = self.current.clone();
            }
            self.advance_iteration(out);
        }
    }

    // ---- buffering and view fencing ----------------------------------------

    fn should_buffer(&self, msg: &LbMsg) -> bool {
        match msg {
            LbMsg::Td(TdMsg::Token { epoch, .. }) | LbMsg::Td(TdMsg::Terminated { epoch, .. }) => {
                *epoch > self.det.epoch()
            }
            // A collective stamped with a future view generation: a peer
            // already restarted on news we have not merged yet. Hold it
            // until the View flood reaches us and we restart too.
            LbMsg::ReduceUp { slot, .. } | LbMsg::ReduceDown { slot, .. } => {
                Self::slot_generation(*slot) > self.view.generation()
            }
            other => match other.basic_epoch() {
                Some(e) => e > self.det.epoch(),
                None => false,
            },
        }
    }

    /// Whether `msg` was produced under a view older than ours. Stale
    /// traffic is dropped un-dispatched *and un-counted*: the dead view's
    /// TD epoch was abandoned wholesale at restart, so its books need not
    /// balance.
    fn is_stale(&self, msg: &LbMsg) -> bool {
        match msg {
            LbMsg::ReduceUp { slot, .. } | LbMsg::ReduceDown { slot, .. } => {
                Self::slot_generation(*slot) < self.view.generation()
            }
            LbMsg::Td(TdMsg::Token { epoch, .. }) | LbMsg::Td(TdMsg::Terminated { epoch, .. }) => {
                *epoch < self.view.epoch_base()
            }
            LbMsg::View { .. } => false,
            other => match other.basic_epoch() {
                Some(e) => e < self.view.epoch_base(),
                None => false,
            },
        }
    }

    fn replay_buffered(&mut self, out: &mut Vec<Command>) {
        // Messages for the (new) current epoch become deliverable; later
        // ones stay. Replay preserves arrival order.
        let mut deliverable = Vec::new();
        let mut keep = Vec::new();
        for (from, msg) in std::mem::take(&mut self.buffered) {
            if self.should_buffer(&msg) {
                keep.push((from, msg));
            } else {
                deliverable.push((from, msg));
            }
        }
        self.buffered = keep;
        for (from, msg) in deliverable {
            // Dispatching one message can trigger a view change that
            // stales the rest of the batch.
            if self.is_stale(&msg) {
                continue;
            }
            self.dispatch(out, from, msg);
        }
    }

    /// Deliver a protocol message that passed the transport layer (dedup
    /// already done); drop it if it predates our view, buffer it if it
    /// belongs to a future epoch.
    fn receive(&mut self, out: &mut Vec<Command>, from: RankId, msg: LbMsg) {
        if self.is_stale(&msg) {
            return;
        }
        // A parked engine is inert: only membership traffic (a healed
        // view flood or a post-commit heal offer) can wake it. Anything
        // else — including buffered replays on the way in — is protocol
        // progress a quorum-less component must not make.
        if self.parked && !matches!(msg, LbMsg::View { .. } | LbMsg::Heal { .. }) {
            return;
        }
        if self.should_buffer(&msg) {
            self.buffered.push((from, msg));
            return;
        }
        self.dispatch(out, from, msg);
    }

    fn dispatch(&mut self, out: &mut Vec<Command>, from: RankId, msg: LbMsg) {
        match msg {
            LbMsg::ReduceUp { slot, summary } => {
                if let Some(done) = self.slot_mut(slot).on_child(from, summary) {
                    self.reduce_complete(out, slot, done);
                }
            }
            LbMsg::ReduceDown { slot, summary } => {
                self.broadcast_down(out, slot, summary);
                self.on_reduce_result(out, slot, summary);
            }
            LbMsg::Gossip {
                epoch,
                round,
                pairs,
            } => {
                debug_assert_eq!(epoch, self.det.epoch(), "buffering must align epochs");
                self.on_gossip(round, pairs);
            }
            LbMsg::Propose { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_propose(out, from, tasks);
            }
            LbMsg::ProposeReply { epoch, rejected } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_propose_reply(rejected);
            }
            LbMsg::Fetch { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_fetch(out, from, tasks);
            }
            LbMsg::TaskData { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_task_data(tasks);
            }
            LbMsg::View { base, dead } => {
                let dead: BTreeSet<RankId> = dead.into_iter().collect();
                self.handle_view(out, base, &dead);
            }
            LbMsg::Knock => self.handle_knock(out, from),
            LbMsg::Heal { base, dead } => {
                let dead: BTreeSet<RankId> = dead.into_iter().collect();
                self.handle_heal_offer(out, base, &dead);
            }
            LbMsg::Td(td) => {
                let outcome = self.det.handle(td);
                self.emit_td(out, outcome);
            }
        }
    }

    // ---- view changes ------------------------------------------------------

    fn handle_view(&mut self, out: &mut Vec<Command>, base: u64, dead: &BTreeSet<RankId>) {
        if self.done || !self.view.merge_full(base, dead) {
            // A finished engine keeps its committed result; a stale or
            // already-merged view is not news. Either way the flood has
            // nothing left to spread from here.
            return;
        }
        debug_assert!(
            self.view.is_live(self.me),
            "the driver must intercept a view declaring this rank dead"
        );
        // Convergent flood: re-broadcast the *merged* view to every
        // other rank — including the dead ones, so a warm-restarted
        // zombie learns the survivors moved on without it and stands
        // down (the driver handles a rank that hears of its own death).
        let merged: Vec<RankId> = self.view.dead().iter().copied().collect();
        let vbase = self.view.base_gen();
        for r in (0..self.num_ranks).map(RankId::from) {
            if r != self.me {
                self.send_ctrl(
                    out,
                    r,
                    LbMsg::View {
                        base: vbase,
                        dead: merged.clone(),
                    },
                );
            }
        }
        out.push(Command::Instant(EventKind::ViewChange {
            generation: self.view.generation() as u32,
            dead: self.view.dead().len() as u32,
        }));
        if self.cfg.quorum && !self.view.has_quorum() {
            self.park(out);
        } else {
            self.restart(out);
        }
    }

    /// A [`LbMsg::Knock`] arrived from a rank this view has fenced out:
    /// the path to it demonstrably works again, so the partition healed.
    /// Only the live component's *leader* (lowest live rank) initiates
    /// the heal, and only while it holds quorum — two concurrent healers
    /// could otherwise mint competing heal fences for overlapping views.
    fn handle_knock(&mut self, out: &mut Vec<Command>, from: RankId) {
        if !self.cfg.quorum
            || self.parked
            || self.view.is_live(from)
            || !self.view.has_quorum()
            || self.live.first() != Some(&self.me)
        {
            return;
        }
        let rejoined: BTreeSet<RankId> = [from].into_iter().collect();
        self.handle_heal(out, &rejoined);
    }

    fn handle_heal(&mut self, out: &mut Vec<Command>, rejoined: &BTreeSet<RankId>) {
        let news: BTreeSet<RankId> = rejoined
            .iter()
            .copied()
            .filter(|r| !self.view.is_live(*r))
            .collect();
        if news.is_empty() {
            return;
        }
        self.view.heal(&news);
        let base = self.view.base_gen();
        let dead: Vec<RankId> = self.view.dead().iter().copied().collect();
        out.push(Command::Instant(EventKind::Healed {
            generation: self.view.generation() as u32,
        }));
        if self.done {
            // Post-commit heal: the committed result stands (the run
            // never referenced the fenced ranks' tasks). Hand each
            // rejoined rank the healed view so it finishes read-only in
            // agreement instead of waiting out its park deadline.
            for r in &news {
                self.send_ctrl(
                    out,
                    *r,
                    LbMsg::Heal {
                        base,
                        dead: dead.clone(),
                    },
                );
            }
            return;
        }
        // Mid-run heal: flood the healed view — its base dominates every
        // generation either component ever used, so it wins merge_full
        // everywhere, un-parks the rejoined side, and restarts every
        // live rank from Setup on the re-merged component.
        for r in (0..self.num_ranks).map(RankId::from) {
            if r != self.me {
                self.send_ctrl(
                    out,
                    r,
                    LbMsg::View {
                        base,
                        dead: dead.clone(),
                    },
                );
            }
        }
        self.restart(out);
    }

    /// A post-commit [`LbMsg::Heal`] offer from the majority's leader:
    /// adopt the healed view and finish read-only on the original
    /// placement — consistent with the majority's commit, which never
    /// proposed tasks to or from this fenced rank.
    fn handle_heal_offer(&mut self, out: &mut Vec<Command>, base: u64, dead: &BTreeSet<RankId>) {
        if self.done || !self.parked || !self.view.merge_full(base, dead) {
            return;
        }
        debug_assert!(
            self.view.is_live(self.me),
            "a heal offer must readmit its target"
        );
        self.parked = false;
        self.current = self.original.clone();
        self.best = self.original.clone();
        self.state = StageState::Done;
        self.done = true;
        out.push(Command::Instant(EventKind::Healed {
            generation: self.view.generation() as u32,
        }));
        out.push(Command::Finished);
    }

    /// Park: the live component lost quorum. Fence epochs exactly like a
    /// restart — so stale cross-partition traffic drops — but go inert
    /// on the *original* placement instead of re-entering the protocol:
    /// a minority must neither gossip, nor transfer, nor commit
    /// (split-brain prevention). The driver arms the park deadline and
    /// knocks at the fenced side until a heal or the deadline resolves
    /// the wait.
    fn park(&mut self, out: &mut Vec<Command>) {
        self.parked = true;
        self.live = self.view.live_ranks();
        self.tree = Tree::new(self.live.len(), RankId::new(0));
        let _ = self.det.set_dead(self.view.dead());
        self.det.start_epoch(self.view.epoch_base());
        self.slots.clear();
        let buffered = std::mem::take(&mut self.buffered);
        self.buffered = buffered
            .into_iter()
            .filter(|(_, m)| !self.is_stale(m))
            .collect();
        self.current = self.original.clone();
        self.best = self.original.clone();
        self.l_ave = 0.0;
        self.initial_imbalance = 0.0;
        self.best_imbalance = f64::INFINITY;
        self.trial = 0;
        self.iter = 0;
        self.records.clear();
        self.iter_transfers = 0;
        self.iter_rejected = 0;
        self.migrations_in = 0;
        self.migrations_out = 0;
        self.nacks_received = 0;
        self.state = StageState::Setup;
        out.push(Command::Instant(EventKind::Parked {
            generation: self.view.generation() as u32,
        }));
    }

    /// Restart the protocol from Setup on the surviving quorum. The old
    /// view's in-flight epoch is abandoned (its TD books never balance —
    /// the corpse can't reply — so it is discarded, not drained) and all
    /// of its traffic is fenced behind the new epoch base.
    fn restart(&mut self, out: &mut Vec<Command>) {
        // A heal that regained quorum un-parks the engine.
        self.parked = false;
        // Survivor set and the dense collective tree over its indices.
        self.live = self.view.live_ranks();
        self.tree = Tree::new(self.live.len(), RankId::new(0));

        // Fence termination detection: tell the detector who died (its
        // relaunch sends target the old, now-abandoned epoch — discard
        // them), then hard-reset it to the new view's epoch base.
        let _ = self.det.set_dead(self.view.dead());
        self.det.start_epoch(self.view.epoch_base());

        // Drop cross-view state: partial collectives and any buffered
        // message that the new view fences out.
        self.slots.clear();
        let buffered = std::mem::take(&mut self.buffered);
        self.buffered = buffered
            .into_iter()
            .filter(|(_, m)| !self.is_stale(m))
            .collect();

        // Reset the algorithm to this rank's original residency. Tasks
        // homed on a dead rank are gone at this layer — restoring their
        // data is the application's job (checkpoints in
        // `empire::dist_app`); the LB protocol just re-balances whatever
        // the survivors still hold.
        self.current = self.original.clone();
        self.best = self.original.clone();
        self.l_ave = 0.0;
        self.initial_imbalance = 0.0;
        self.best_imbalance = f64::INFINITY;
        self.trial = 0;
        self.iter = 0;
        self.records.clear();
        self.iter_transfers = 0;
        self.iter_rejected = 0;
        self.migrations_in = 0;
        self.migrations_out = 0;
        self.nacks_received = 0;

        // Re-enter Setup on the survivor set, then replay anything we
        // buffered from peers that restarted before us.
        self.state = StageState::Setup;
        out.push(Command::OpenSpan(EventKind::LbStage {
            stage: "setup",
            trial: 0,
            iter: 0,
        }));
        let summary = LoadSummary::of(self.my_load());
        let slot = self.setup_slot();
        self.contribute(out, slot, summary);
        self.replay_buffered(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cfg: EngineConfig, tasks: Vec<(TaskId, f64)>, num_ranks: usize) -> GossipEngine {
        GossipEngine::new(RankId::new(0), num_ranks, tasks, cfg, RngFactory::new(1))
    }

    #[test]
    fn epoch_numbering_is_disjoint_and_ordered() {
        let cfg = EngineConfig {
            trials: 3,
            iters: 4,
            rounds: 5,
            ..EngineConfig::tempered()
        };
        let mut e = engine(cfg, vec![], 2);
        let mut seen = Vec::new();
        for trial in 0..3 {
            for iter in 0..4 {
                e.trial = trial;
                e.iter = iter;
                for round in 1..=5u32 {
                    seen.push(e.gossip_round_epoch(round));
                }
                seen.push(e.proposal_epoch());
            }
        }
        seen.push(e.commit_epoch());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "epochs must be unique");
        assert_eq!(*seen.first().unwrap(), 1, "epoch 0 is reserved for setup");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "epochs must ascend");
        assert_eq!(*seen.last().unwrap(), e.commit_epoch());
    }

    #[test]
    fn eval_slots_are_unique_per_iteration() {
        let cfg = EngineConfig {
            trials: 2,
            iters: 3,
            ..EngineConfig::tempered()
        };
        let mut e = engine(cfg, vec![], 2);
        let mut slots = Vec::new();
        for trial in 0..2 {
            for iter in 0..3 {
                e.trial = trial;
                e.iter = iter;
                slots.push(e.eval_slot());
            }
        }
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(!slots.contains(&0), "slot 0 is the setup allreduce");
    }

    #[test]
    fn sub_epoch_matches_the_analysis_mode_derivation() {
        // refine() namespaces (trial, 1-based iter) the same way with
        // invocation epoch 0; the two derivations must never drift.
        let mut e = engine(EngineConfig::tempered(), vec![], 2);
        for (trial, iter) in [(0usize, 0usize), (0, 7), (3, 2)] {
            e.trial = trial;
            e.iter = iter;
            let refine_style =
                (((trial as u64) << 10) | (iter as u64 + 1)).wrapping_mul(0x9E37_79B9);
            assert_eq!(e.sub_epoch(), refine_style);
        }
    }

    #[test]
    fn abort_before_commit_reverts_to_input() {
        let tasks = vec![(TaskId::new(1), 1.0), (TaskId::new(2), 2.0)];
        let mut e = engine(EngineConfig::tempered(), tasks, 4);
        e.state = StageState::Transfer;
        e.current.clear(); // pretend everything was proposed away
        let label = e.abort();
        assert_eq!(label, "proposals");
        assert!(e.is_done());
        assert_eq!(e.final_tasks().len(), 2);
        assert_eq!(e.stage(), Stage::Done);
    }

    #[test]
    fn abort_at_commit_keeps_the_agreed_best() {
        let tasks = vec![(TaskId::new(1), 1.0)];
        let mut e = engine(EngineConfig::tempered(), tasks, 4);
        e.state = StageState::Commit;
        e.current = vec![TaskEntry {
            id: TaskId::new(9),
            load: 3.0,
            home: RankId::new(2),
        }];
        let label = e.abort();
        assert_eq!(label, "commit");
        assert_eq!(e.final_tasks().len(), 1);
        assert_eq!(e.final_tasks()[0].id, TaskId::new(9));
    }

    #[test]
    fn view_change_floods_and_restarts_from_setup() {
        let mut e = engine(EngineConfig::tempered(), vec![(TaskId::new(1), 1.0)], 4);
        let _ = e.start();
        let dead: BTreeSet<RankId> = [RankId::new(2)].into_iter().collect();
        let cmds = e.on_view(&dead);
        assert_eq!(e.view().generation(), 1);
        assert_eq!(e.stage(), Stage::Setup, "restart re-enters setup");
        assert!(
            e.gossip_round_epoch(1) >= crate::membership::VIEW_EPOCH_STRIDE,
            "new view's epochs are fenced past every old epoch"
        );
        // The flood reaches every other rank — the corpse included, so a
        // warm-restarted zombie learns to stand down.
        let view_sends = cmds
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    Command::Send {
                        msg: LbMsg::View { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(view_sends, 3);
        // Merging the same set again is not news: no second flood.
        assert!(e.on_view(&dead).is_empty());
    }

    #[test]
    fn stale_traffic_from_an_old_view_is_dropped() {
        let mut e = engine(EngineConfig::tempered(), vec![(TaskId::new(1), 1.0)], 4);
        let _ = e.start();
        let dead: BTreeSet<RankId> = [RankId::new(2)].into_iter().collect();
        let _ = e.on_view(&dead);
        // Old-view basic traffic (epochs below the new base) is ignored.
        let cmds = e.on_message(
            RankId::new(1),
            LbMsg::Gossip {
                epoch: 1,
                round: 1,
                pairs: vec![].into(),
            },
        );
        assert!(cmds.is_empty());
        // Old-view collectives (generation 0 slots) are ignored too.
        let cmds = e.on_message(
            RankId::new(1),
            LbMsg::ReduceUp {
                slot: 0,
                summary: LoadSummary::of(1.0),
            },
        );
        assert!(cmds.is_empty());
        assert_eq!(
            e.stage(),
            Stage::Setup,
            "stale traffic must not advance state"
        );
    }

    #[test]
    fn finished_engine_keeps_its_result_across_view_changes() {
        let mut e = engine(EngineConfig::tempered(), vec![(TaskId::new(1), 1.0)], 4);
        e.state = StageState::Done;
        e.done = true;
        let dead: BTreeSet<RankId> = [RankId::new(3)].into_iter().collect();
        let cmds = e.on_view(&dead);
        assert!(cmds.is_empty(), "a done engine neither floods nor restarts");
        assert_eq!(e.view().generation(), 0);
        assert_eq!(e.final_tasks().len(), 1);
    }

    #[test]
    fn engine_config_derives_from_refine_config() {
        let t = EngineConfig::tempered();
        let r = RefineConfig::tempered();
        assert_eq!(t.trials, r.trials);
        assert_eq!(t.iters, r.iters);
        assert_eq!(t.fanout, r.gossip.fanout);
        assert_eq!(t.rounds, r.gossip.rounds);
        assert!(!t.use_nacks);
        let g = EngineConfig::grapevine();
        assert_eq!((g.trials, g.iters), (1, 1));
    }
}
