//! Zero-latency in-process driver for [`Protocol`] actors.
//!
//! [`LocalRunner`] executes a set of ranks with no modeled network at
//! all: messages deliver instantly in FIFO order, timers fire only when
//! the message queue drains. It is the minimal driver of the
//! engine/transport/driver stack — no latency model, no fault injection,
//! no network statistics — and exists for two reasons:
//!
//! 1. **Equivalence testing.** With delivery trivially reliable and
//!    ordered, an engine run here must commit the *exact* assignment the
//!    analysis-mode driver (`tempered_core::refine`) computes; the
//!    `equivalence` integration test asserts this bit for bit. A second,
//!    differently-scheduled execution (the discrete-event
//!    [`crate::sim::Simulator`] with its latency model) agreeing too is
//!    then strong evidence the protocol is timing-independent.
//! 2. **Embedding.** Applications that want a distributed balancer's
//!    exact decisions without simulating an interconnect (e.g. unit
//!    tests of higher layers) can run one synchronously in-process.
//!
//! FIFO order is a *valid* schedule of the asynchronous protocol, not a
//! cheat: the engine's canonicalization makes any delivery order commit
//! the same result, and the simulator-based chaos tests exercise the
//! adversarial orders.

use super::engine::AsyncIterationRecord;
use super::rank::LbRank;
use super::LbProtocolConfig;
use crate::sim::{Ctx, Protocol};
use std::collections::VecDeque;
use tempered_core::distribution::Distribution;
use tempered_core::ids::RankId;
use tempered_core::rng::RngFactory;
use tempered_core::task::Task;

/// In-process zero-latency executor.
pub struct LocalRunner<P: Protocol> {
    ranks: Vec<P>,
    /// FIFO of in-flight messages as `(to, from, msg)`.
    queue: VecDeque<(RankId, RankId, P::Msg)>,
    /// Pending self-timers as `(fire time, arm order, rank, msg)`.
    timers: Vec<(f64, u64, RankId, P::Msg)>,
    timer_seq: u64,
    now: f64,
    delivered: u64,
}

impl<P: Protocol> LocalRunner<P> {
    /// Create a runner over `ranks` (index = rank id).
    pub fn new(ranks: Vec<P>) -> Self {
        LocalRunner {
            ranks,
            queue: VecDeque::new(),
            timers: Vec::new(),
            timer_seq: 0,
            now: 0.0,
            delivered: 0,
        }
    }

    /// Run to completion. Returns `true` if every rank reported done;
    /// `false` if the system stalled (no messages, no timers, ranks
    /// still waiting — a protocol bug or an unmasked delivery failure).
    pub fn run(&mut self) -> bool {
        for i in 0..self.ranks.len() {
            let me = RankId::from(i);
            let mut outbox = Vec::new();
            let mut ctx = Ctx::detached(me, self.now, &mut outbox);
            self.ranks[i].on_start(&mut ctx);
            let timers = ctx.take_timers();
            self.absorb(me, outbox, timers);
        }
        loop {
            if let Some((to, from, msg)) = self.queue.pop_front() {
                self.deliver(to, from, msg);
                continue;
            }
            if self.ranks.iter().all(|r| r.is_done()) {
                return true;
            }
            // Queue drained but ranks still waiting: fire the earliest
            // timer (virtual time jumps forward; ties break by arm order).
            let Some(next) = self
                .timers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap())
                .map(|(i, _)| i)
            else {
                return false;
            };
            let (time, _, me, msg) = self.timers.remove(next);
            self.now = self.now.max(time);
            self.deliver(me, me, msg);
        }
    }

    /// Messages delivered so far (diagnostics).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Consume the runner, returning the rank actors.
    pub fn into_ranks(self) -> Vec<P> {
        self.ranks
    }

    fn deliver(&mut self, to: RankId, from: RankId, msg: P::Msg) {
        self.delivered += 1;
        let idx = to.as_u32() as usize;
        let mut outbox = Vec::new();
        let mut ctx = Ctx::detached(to, self.now, &mut outbox);
        self.ranks[idx].on_message(&mut ctx, from, msg);
        let timers = ctx.take_timers();
        self.absorb(to, outbox, timers);
    }

    fn absorb(
        &mut self,
        me: RankId,
        outbox: Vec<(RankId, P::Msg, usize)>,
        timers: Vec<(f64, P::Msg)>,
    ) {
        for (to, msg, _bytes) in outbox {
            self.queue.push_back((to, me, msg));
        }
        for (delay, msg) in timers {
            self.timers
                .push((self.now + delay, self.timer_seq, me, msg));
            self.timer_seq += 1;
        }
    }
}

/// Result of a zero-latency distributed LB pass.
#[derive(Clone, Debug)]
pub struct LocalLbResult {
    /// The resulting assignment.
    pub distribution: Distribution,
    /// Imbalance of the input (as agreed by the setup allreduce).
    pub initial_imbalance: f64,
    /// Imbalance of the committed proposal.
    pub final_imbalance: f64,
    /// Real task migrations executed at commit.
    pub tasks_migrated: usize,
    /// Per-iteration records from rank 0.
    pub records: Vec<AsyncIterationRecord>,
    /// Ranks that abandoned the protocol (always 0 here: delivery is
    /// trivially reliable).
    pub degraded_ranks: usize,
}

/// Run the asynchronous protocol over `dist` on the zero-latency
/// in-process driver. Same protocol, same engine, no modeled network.
pub fn run_local_lb(
    dist: &Distribution,
    cfg: LbProtocolConfig,
    factory: &RngFactory,
) -> LocalLbResult {
    let num_ranks = dist.num_ranks();
    let ranks: Vec<LbRank> = dist
        .rank_ids()
        .map(|r| {
            let tasks: Vec<_> = dist
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get()))
                .collect();
            LbRank::new(r, num_ranks, tasks, cfg, *factory)
        })
        .collect();
    let mut runner = LocalRunner::new(ranks);
    let completed = runner.run();
    assert!(
        completed,
        "the zero-latency driver cannot stall on a fault-free run"
    );
    let ranks = runner.into_ranks();
    let degraded_ranks = ranks.iter().filter(|r| r.degraded()).count();
    let mut out = Distribution::new(num_ranks);
    let mut tasks_migrated = 0usize;
    for (p, r) in ranks.iter().enumerate() {
        for t in r.final_tasks() {
            let inserted = out.insert(RankId::from(p), Task::new(t.id, t.load));
            if degraded_ranks == 0 {
                inserted.expect("each task has exactly one final owner");
            }
        }
        tasks_migrated += r.migrations_in();
    }
    if degraded_ranks == 0 {
        assert_eq!(
            out.num_tasks(),
            dist.num_tasks(),
            "no task may be lost or duplicated by the protocol"
        );
    }
    LocalLbResult {
        initial_imbalance: ranks[0].initial_imbalance(),
        final_imbalance: out.imbalance(),
        tasks_migrated,
        records: ranks[0].records().to_vec(),
        degraded_ranks,
        distribution: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_runner_balances_and_is_deterministic() {
        let dist = Distribution::from_loads(vec![
            vec![1.0; 40],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
        ]);
        let cfg = LbProtocolConfig {
            trials: 2,
            iters: 4,
            fanout: 3,
            rounds: 5,
            ..Default::default()
        };
        let a = run_local_lb(&dist, cfg, &RngFactory::new(17));
        let b = run_local_lb(&dist, cfg, &RngFactory::new(17));
        assert!(a.final_imbalance < a.initial_imbalance);
        assert_eq!(a.final_imbalance.to_bits(), b.final_imbalance.to_bits());
        assert_eq!(a.tasks_migrated, b.tasks_migrated);
        assert_eq!(a.degraded_ranks, 0);
        a.distribution.check_invariants().unwrap();
        for r in a.distribution.rank_ids() {
            assert_eq!(a.distribution.rank_load(r), b.distribution.rank_load(r));
        }
    }

    #[test]
    fn local_runner_handles_single_rank() {
        let dist = Distribution::from_loads(vec![vec![1.0, 2.0, 3.0]]);
        let out = run_local_lb(&dist, LbProtocolConfig::grapevine(), &RngFactory::new(1));
        assert_eq!(out.tasks_migrated, 0);
        assert_eq!(out.distribution.num_tasks(), 3);
    }

    #[test]
    fn local_runner_with_reliability_still_completes() {
        // Retry timers get armed but the queue never starves them into
        // firing before completion; leftover timers must not stall exit.
        let dist = Distribution::from_loads(vec![vec![4.0, 1.0], vec![], vec![], vec![]]);
        let cfg = LbProtocolConfig {
            trials: 1,
            iters: 2,
            fanout: 2,
            rounds: 3,
            ..Default::default()
        }
        .hardened(crate::reliable::RetryConfig::default());
        let out = run_local_lb(&dist, cfg, &RngFactory::new(5));
        assert_eq!(out.degraded_ranks, 0);
        assert_eq!(out.distribution.num_tasks(), 2);
    }
}
