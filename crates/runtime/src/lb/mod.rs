//! The asynchronous, message-driven load balancing protocol.
//!
//! This module is the distributed counterpart of
//! `tempered_core::refine`: the same inform/transfer/refine algorithms —
//! literally the same kernel functions — but executed as an actual
//! barrier-free message protocol over the runtime substrate.
//!
//! It is layered sans-I/O style (see `DESIGN.md` §9):
//!
//! - [`engine`] — the pure protocol state machine ([`GossipEngine`]):
//!   stages, epochs, collectives, gossip, transfer, commit. No I/O, no
//!   clocks, no retries.
//! - [`transport`] — composable delivery layers ([`transport::Raw`],
//!   [`transport::Reliable`], [`transport::Faulty`]) turning protocol
//!   messages into wire frames and back.
//! - [`rank`] — the thin actor ([`LbRank`]) binding engine + transport
//!   to an executor via the [`crate::sim::Protocol`] trait.
//! - [`emulator`] — the userspace link emulator interpreting a
//!   [`crate::fault::FaultPlan`] for the real-I/O drivers (send-time
//!   fates, crash windows), shared by `parallel` and [`socket`].
//! - drivers — the deterministic discrete-event [`crate::sim::Simulator`],
//!   the threaded `parallel` executor, the zero-latency in-process
//!   [`LocalRunner`], and the multi-process TCP [`socket`] driver.

mod config;
pub mod driver;
pub mod emulator;
pub mod engine;
mod messages;
mod rank;
pub mod socket;
pub mod transport;

pub use config::{LbProtocolConfig, PartitionConfig};
pub use driver::{run_local_lb, LocalLbResult, LocalRunner};
pub use emulator::{Delivery, LinkEmulator};
pub use engine::{AsyncIterationRecord, Command, EngineConfig, GossipEngine, Stage};
pub use messages::{LbMsg, LbWire, TaskEntry, WireDecodeError, WireDecodeErrorKind};
pub use rank::LbRank;
pub use socket::{encode_frame, run_socket_rank, FrameReader, SocketConfig, SocketRankReport};

use crate::fault::FaultPlan;
use crate::reliable::ReliableStats;
use crate::sim::{NetworkModel, SimReport, Simulator};
use tempered_core::balancer::{LoadBalancer, RebalanceResult};
use tempered_core::distribution::Distribution;
use tempered_core::forecast::{ForecastBank, Holt};
use tempered_core::ids::RankId;
use tempered_core::refine::net_migrations;
use tempered_core::rng::RngFactory;
use tempered_core::task::Task;
use tempered_obs::Recorder;

/// Result of a full distributed LB pass.
#[derive(Clone, Debug)]
pub struct DistLbResult {
    /// The resulting assignment.
    pub distribution: Distribution,
    /// Imbalance of the input (as agreed by the setup allreduce).
    pub initial_imbalance: f64,
    /// Imbalance of the committed proposal.
    pub final_imbalance: f64,
    /// Real task migrations executed at commit.
    pub tasks_migrated: usize,
    /// Per-iteration records from rank 0 (imbalances are globally
    /// agreed, so rank 0's view is the global sequence).
    pub records: Vec<AsyncIterationRecord>,
    /// Ranks that abandoned the protocol (retry budget exhausted or
    /// stage deadline missed) and reverted to a safe assignment. Always
    /// 0 on a fault-free run.
    pub degraded_ranks: usize,
    /// Ranks that sat out the run parked — quorum-less under a partition
    /// — and finished read-only on their original placement. Always 0
    /// unless [`LbProtocolConfig::partition`] is set and the fault plan
    /// actually split the network.
    pub parked_ranks: usize,
    /// Delivery-layer counters summed over ranks (all zero unless
    /// [`LbProtocolConfig::reliability`] is set).
    pub reliable: ReliableStats,
    /// Executor report: virtual time, events, network volume, faults.
    pub report: SimReport,
}

/// Run the asynchronous protocol over `dist` on the deterministic
/// event-driven executor.
pub fn run_distributed_lb(
    dist: &Distribution,
    cfg: LbProtocolConfig,
    model: NetworkModel,
    factory: &RngFactory,
) -> DistLbResult {
    run_distributed_lb_with_faults(dist, cfg, model, factory, FaultPlan::none())
}

/// Run the asynchronous protocol under an adversarial network described
/// by `plan`. With a zeroed plan this is exactly [`run_distributed_lb`].
///
/// Task conservation is asserted only when no rank degraded: a degraded
/// rank reverts unilaterally, so its in-flight proposals may be held by
/// both sides or neither — the embedding application is expected to
/// treat any degraded rank as a failed LB round and discard the whole
/// result (see `tempered-empire`'s distributed app).
pub fn run_distributed_lb_with_faults(
    dist: &Distribution,
    cfg: LbProtocolConfig,
    model: NetworkModel,
    factory: &RngFactory,
    plan: FaultPlan,
) -> DistLbResult {
    run_distributed_lb_traced(dist, cfg, model, factory, plan, Recorder::disabled())
}

/// [`run_distributed_lb_with_faults`] with an observability recorder
/// threaded through the executor and every rank. With a fault-free plan
/// the recorded trace is a pure function of `(dist, cfg, model, seed)`:
/// two runs with the same inputs export byte-identical `trace.json`.
pub fn run_distributed_lb_traced(
    dist: &Distribution,
    cfg: LbProtocolConfig,
    model: NetworkModel,
    factory: &RngFactory,
    plan: FaultPlan,
    recorder: Recorder,
) -> DistLbResult {
    let num_ranks = dist.num_ranks();
    let ranks: Vec<LbRank> = dist
        .rank_ids()
        .map(|r| {
            let tasks: Vec<_> = dist
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get()))
                .collect();
            let mut rank = LbRank::new(r, num_ranks, tasks, cfg, *factory);
            rank.set_recorder(recorder.clone());
            rank
        })
        .collect();

    let fault_free = plan.crashes.is_empty() && plan.links_zero();
    let mut sim = Simulator::new(ranks, model, factory);
    sim.set_recorder(recorder);
    sim.set_fault_plan(plan);
    let report = sim.run();
    if fault_free {
        assert!(
            report.completed,
            "protocol must reach Done on every rank (faults without \
             `reliability` configured can starve the best-effort protocol)"
        );
    }

    let ranks = sim.into_ranks();
    let degraded_ranks = ranks.iter().filter(|r| r.degraded()).count();
    let parked_ranks = ranks.iter().filter(|r| r.parked()).count();
    let strict = degraded_ranks == 0 && fault_free;
    let mut reliable = ReliableStats::default();
    let mut out = Distribution::new(num_ranks);
    let mut tasks_migrated = 0usize;
    for (p, r) in ranks.iter().enumerate() {
        reliable.merge(&r.reliable_stats());
        if !r.finished() {
            // Crashed mid-protocol: its engine holds a corpse's state.
            // Tasks homed there are restored from checkpoints by the
            // application layer (see `tempered-empire`), not here.
            continue;
        }
        for t in r.final_tasks() {
            let inserted = out.insert(RankId::from(p), Task::new(t.id, t.load));
            if strict {
                inserted.expect("each task has exactly one final owner");
            }
            // With degraded or crashed ranks a task may be claimed twice
            // (a unilateral revert, or a rank that committed in an older
            // view); keep the first claim for reporting purposes.
        }
        tasks_migrated += r.migrations_in();
    }
    if strict {
        assert_eq!(
            out.num_tasks(),
            dist.num_tasks(),
            "no task may be lost or duplicated by the protocol"
        );
    }

    // Records and the agreed imbalances come from a rank that finished
    // the protocol normally — with crashes, rank 0 may be a corpse, and
    // under a partition a parked rank's records reflect a run it sat
    // out, so prefer a rank from the committing (majority) component.
    let reporter = ranks
        .iter()
        .position(|r| r.finished() && !r.degraded() && !r.parked())
        .or_else(|| ranks.iter().position(|r| r.finished() && !r.degraded()))
        .unwrap_or(0);
    DistLbResult {
        initial_imbalance: ranks[reporter].initial_imbalance(),
        final_imbalance: out.imbalance(),
        tasks_migrated,
        records: ranks[reporter].records().to_vec(),
        degraded_ranks,
        parked_ranks,
        reliable,
        distribution: out,
        report,
    }
}

/// [`LoadBalancer`] adapter: TemperedLB executed through the full
/// asynchronous protocol instead of the analysis-mode driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistributedTemperedLb {
    /// Protocol knobs.
    pub config: LbProtocolConfig,
    /// Network latency model for the simulated interconnect.
    pub model: NetworkModel,
}

/// Shared rebalance path of the distributed [`LoadBalancer`] adapters:
/// namespace the protocol's randomness by invocation epoch, run the full
/// async protocol on the discrete-event executor, and report net
/// migrations against the input.
fn rebalance_distributed(
    dist: &Distribution,
    cfg: LbProtocolConfig,
    model: NetworkModel,
    factory: &RngFactory,
    epoch: u64,
) -> RebalanceResult {
    let sub = RngFactory::new(tempered_core::rng::derive_seed(
        factory.master(),
        &[0x0A57_C0DE, epoch],
    ));
    let out = run_distributed_lb(dist, cfg, model, &sub);
    let migrations = net_migrations(dist, &out.distribution);
    RebalanceResult {
        initial_imbalance: out.initial_imbalance,
        final_imbalance: out.final_imbalance,
        messages_sent: out.report.network.messages,
        migrations,
        distribution: out.distribution,
    }
}

impl LoadBalancer for DistributedTemperedLb {
    fn name(&self) -> &'static str {
        "DistTemperedLB"
    }

    fn rebalance(
        &mut self,
        dist: &Distribution,
        factory: &RngFactory,
        epoch: u64,
    ) -> RebalanceResult {
        rebalance_distributed(dist, self.config, self.model, factory, epoch)
    }
}

/// [`LoadBalancer`] adapter: the original GrapevineLB (single trial,
/// single iteration, strict criterion, original CMF) executed through
/// the full asynchronous protocol. Every balancer expressible as a
/// `RefineConfig` runs distributed this way — the engine is generic over
/// the configuration, not specialized to TemperedLB.
#[derive(Clone, Copy, Debug)]
pub struct DistributedGrapevineLb {
    /// Protocol knobs (defaults to [`LbProtocolConfig::grapevine`]).
    pub config: LbProtocolConfig,
    /// Network latency model for the simulated interconnect.
    pub model: NetworkModel,
}

impl Default for DistributedGrapevineLb {
    fn default() -> Self {
        DistributedGrapevineLb {
            config: LbProtocolConfig::grapevine(),
            model: NetworkModel::default(),
        }
    }
}

impl LoadBalancer for DistributedGrapevineLb {
    fn name(&self) -> &'static str {
        "DistGrapevineLB"
    }

    fn rebalance(
        &mut self,
        dist: &Distribution,
        factory: &RngFactory,
        epoch: u64,
    ) -> RebalanceResult {
        rebalance_distributed(dist, self.config, self.model, factory, epoch)
    }
}

/// Shared rebalance path of the *predictive* distributed adapters:
/// observe the phase into the forecast bank, run the unchanged
/// asynchronous protocol on the forecast distribution (same engine,
/// same transports — the protocol cannot tell predicted loads from
/// measured ones), and restate the committed placement in observed-load
/// units.
fn rebalance_distributed_predictive(
    bank: &mut ForecastBank<Holt>,
    dist: &Distribution,
    cfg: LbProtocolConfig,
    model: NetworkModel,
    factory: &RngFactory,
    epoch: u64,
) -> RebalanceResult {
    bank.observe_epoch(epoch, dist);
    let forecast = bank.forecast(dist);
    let proposed = rebalance_distributed(&forecast, cfg, model, factory, epoch);
    let migrations = net_migrations(dist, &proposed.distribution);
    let mut distribution = dist.clone();
    distribution
        .apply(&migrations)
        .expect("net migrations against the input are consistent");
    RebalanceResult {
        initial_imbalance: dist.imbalance(),
        final_imbalance: distribution.imbalance(),
        messages_sent: proposed.messages_sent,
        migrations,
        distribution,
    }
}

/// [`LoadBalancer`] adapter: TemperedLB through the full asynchronous
/// protocol, fed Holt per-task forecasts in place of last-phase loads
/// (see `tempered_core::forecast`). The protocol stack is the stock
/// one — only the loads handed to [`run_distributed_lb`] differ.
#[derive(Clone, Debug, Default)]
pub struct DistributedPredictiveTemperedLb {
    /// Protocol knobs.
    pub config: LbProtocolConfig,
    /// Network latency model for the simulated interconnect.
    pub model: NetworkModel,
    /// Per-task forecast state, accumulated across invocations.
    pub bank: ForecastBank<Holt>,
}

impl LoadBalancer for DistributedPredictiveTemperedLb {
    fn name(&self) -> &'static str {
        "DistPredTemperedLB"
    }

    fn rebalance(
        &mut self,
        dist: &Distribution,
        factory: &RngFactory,
        epoch: u64,
    ) -> RebalanceResult {
        rebalance_distributed_predictive(
            &mut self.bank,
            dist,
            self.config,
            self.model,
            factory,
            epoch,
        )
    }
}

/// [`LoadBalancer`] adapter: GrapevineLB through the full asynchronous
/// protocol, fed Holt per-task forecasts.
#[derive(Clone, Debug)]
pub struct DistributedPredictiveGrapevineLb {
    /// Protocol knobs (defaults to [`LbProtocolConfig::grapevine`]).
    pub config: LbProtocolConfig,
    /// Network latency model for the simulated interconnect.
    pub model: NetworkModel,
    /// Per-task forecast state, accumulated across invocations.
    pub bank: ForecastBank<Holt>,
}

impl Default for DistributedPredictiveGrapevineLb {
    fn default() -> Self {
        DistributedPredictiveGrapevineLb {
            config: LbProtocolConfig::grapevine(),
            model: NetworkModel::default(),
            bank: ForecastBank::new(Holt::default()),
        }
    }
}

impl LoadBalancer for DistributedPredictiveGrapevineLb {
    fn name(&self) -> &'static str {
        "DistPredGrapevineLB"
    }

    fn rebalance(
        &mut self,
        dist: &Distribution,
        factory: &RngFactory,
        epoch: u64,
    ) -> RebalanceResult {
        rebalance_distributed_predictive(
            &mut self.bank,
            dist,
            self.config,
            self.model,
            factory,
            epoch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempered_core::transfer::TransferConfig;

    fn concentrated(num_ranks: usize, hot: usize, tasks_per_hot: usize) -> Distribution {
        let per_rank: Vec<Vec<f64>> = (0..num_ranks)
            .map(|r| {
                if r < hot {
                    vec![1.0; tasks_per_hot]
                } else {
                    vec![]
                }
            })
            .collect();
        Distribution::from_loads(per_rank)
    }

    fn quick_cfg() -> LbProtocolConfig {
        LbProtocolConfig {
            trials: 2,
            iters: 4,
            fanout: 4,
            rounds: 6,
            ..Default::default()
        }
    }

    #[test]
    fn async_protocol_balances_concentrated_load() {
        let dist = concentrated(32, 2, 50);
        let out = run_distributed_lb(
            &dist,
            quick_cfg(),
            NetworkModel::default(),
            &RngFactory::new(7),
        );
        assert!(out.initial_imbalance > 10.0);
        assert!(
            out.final_imbalance < 1.5,
            "async tempered should balance well, got {}",
            out.final_imbalance
        );
        assert!(out.tasks_migrated > 0);
        assert!(out.report.network.messages > 0);
        out.distribution.check_invariants().unwrap();
    }

    #[test]
    fn async_protocol_conserves_load() {
        let dist = concentrated(16, 1, 30);
        let out = run_distributed_lb(
            &dist,
            quick_cfg(),
            NetworkModel::default(),
            &RngFactory::new(3),
        );
        assert!(out.distribution.total_load().approx_eq(dist.total_load()));
        assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
    }

    #[test]
    fn async_protocol_is_deterministic() {
        let dist = concentrated(16, 2, 20);
        let run = |seed| {
            run_distributed_lb(
                &dist,
                quick_cfg(),
                NetworkModel::default(),
                &RngFactory::new(seed),
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.final_imbalance, b.final_imbalance);
        assert_eq!(a.report.events_delivered, b.report.events_delivered);
        assert_eq!(a.tasks_migrated, b.tasks_migrated);
        for r in a.distribution.rank_ids() {
            assert_eq!(a.distribution.rank_load(r), b.distribution.rank_load(r));
        }
    }

    #[test]
    fn async_records_track_iterations() {
        let dist = concentrated(16, 2, 20);
        let cfg = quick_cfg();
        let out = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(5));
        assert_eq!(out.records.len(), cfg.trials * cfg.iters);
        // Iterations within a trial are 1-based and consecutive.
        let t0: Vec<usize> = out
            .records
            .iter()
            .filter(|r| r.trial == 0)
            .map(|r| r.iteration)
            .collect();
        assert_eq!(t0, vec![1, 2, 3, 4]);
        // Best imbalance equals the minimum over records (or initial).
        let min_rec = out
            .records
            .iter()
            .map(|r| r.imbalance)
            .fold(f64::INFINITY, f64::min);
        assert!((out.final_imbalance - min_rec.min(out.initial_imbalance)).abs() < 1e-9);
    }

    #[test]
    fn grapevine_config_matches_original_limits() {
        // With the original criterion on a concentrated distribution the
        // protocol should improve far less than tempered.
        let dist = concentrated(32, 1, 64);
        let grapevine = run_distributed_lb(
            &dist,
            LbProtocolConfig {
                trials: 1,
                iters: 1,
                fanout: 4,
                rounds: 6,
                transfer: TransferConfig::grapevine(),
                ..Default::default()
            },
            NetworkModel::default(),
            &RngFactory::new(9),
        );
        let tempered = run_distributed_lb(
            &dist,
            quick_cfg(),
            NetworkModel::default(),
            &RngFactory::new(9),
        );
        assert!(tempered.final_imbalance <= grapevine.final_imbalance);
    }

    /// Menon-style NACKs (the mechanism the paper drops): the protocol
    /// still completes and conserves tasks, and recipients bounce
    /// over-filling proposals so no rank is pushed far past average by
    /// colliding senders within one iteration.
    #[test]
    fn nack_variant_bounces_overfilling_proposals() {
        // Many hot ranks all discovering the same few cold ranks: prime
        // territory for multi-sender collisions.
        let dist = concentrated(12, 8, 30);
        let cfg = LbProtocolConfig {
            use_nacks: true,
            ..quick_cfg()
        };
        let out = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(4));
        assert!(out.report.completed);
        assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
        assert!(out.final_imbalance <= out.initial_imbalance);

        // The same scenario without NACKs must behave identically w.r.t.
        // conservation; quality may differ either way.
        let plain = run_distributed_lb(
            &dist,
            quick_cfg(),
            NetworkModel::default(),
            &RngFactory::new(4),
        );
        assert_eq!(plain.distribution.num_tasks(), dist.num_tasks());
    }

    #[test]
    fn nacks_are_actually_exercised() {
        use crate::sim::Simulator;
        let dist = concentrated(12, 8, 30);
        let cfg = LbProtocolConfig {
            use_nacks: true,
            ..quick_cfg()
        };
        let factory = RngFactory::new(4);
        let ranks: Vec<LbRank> = dist
            .rank_ids()
            .map(|r| {
                let tasks: Vec<_> = dist
                    .tasks_on(r)
                    .iter()
                    .map(|t| (t.id, t.load.get()))
                    .collect();
                LbRank::new(r, dist.num_ranks(), tasks, cfg, factory)
            })
            .collect();
        let mut sim = Simulator::new(ranks, NetworkModel::default(), &factory);
        let report = sim.run();
        assert!(report.completed);
        let total_nacks: usize = sim.into_ranks().iter().map(|r| r.nacks_received()).sum();
        assert!(
            total_nacks > 0,
            "the collision-heavy scenario should trigger at least one NACK"
        );
    }

    /// Extreme latency jitter maximizes message reordering across ranks;
    /// the epoch-buffering discipline must still deliver a correct,
    /// complete run.
    #[test]
    fn protocol_survives_heavy_message_reordering() {
        let dist = concentrated(20, 3, 25);
        let wild = NetworkModel {
            base_latency: 1.0e-6,
            per_byte: 1.0e-9,
            jitter: 50.0, // up to 51x latency spread
        };
        let out = run_distributed_lb(&dist, quick_cfg(), wild, &RngFactory::new(13));
        assert!(out.report.completed);
        assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
        assert!(out.final_imbalance <= out.initial_imbalance);
        out.distribution.check_invariants().unwrap();
    }

    #[test]
    fn balanced_input_stays_put() {
        let dist = Distribution::from_loads(vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let out = run_distributed_lb(
            &dist,
            quick_cfg(),
            NetworkModel::default(),
            &RngFactory::new(1),
        );
        assert_eq!(out.final_imbalance, 0.0);
        assert_eq!(out.tasks_migrated, 0);
    }

    #[test]
    fn single_rank_degenerates_cleanly() {
        let dist = Distribution::from_loads(vec![vec![1.0, 2.0, 3.0]]);
        let cfg = LbProtocolConfig {
            trials: 2,
            iters: 2,
            ..Default::default()
        };
        let out = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(1));
        assert_eq!(out.tasks_migrated, 0);
        assert_eq!(out.distribution.num_tasks(), 3);
    }

    /// The predictive adapter over a constant workload is its
    /// persistence twin: a fresh bank (and, after observation, a
    /// zero-innovation Holt state) forecasts the observed loads
    /// bit-exactly, so the unchanged protocol sees identical inputs and
    /// commits the identical assignment.
    #[test]
    fn predictive_adapter_matches_twin_on_constant_workload() {
        let dist = concentrated(16, 2, 20);
        let factory = RngFactory::new(2);
        let mut twin = DistributedTemperedLb {
            config: quick_cfg(),
            model: NetworkModel::default(),
        };
        let mut pred = DistributedPredictiveTemperedLb {
            config: quick_cfg(),
            model: NetworkModel::default(),
            bank: ForecastBank::default(),
        };
        for epoch in 0..3 {
            let a = twin.rebalance(&dist, &factory, epoch);
            let b = pred.rebalance(&dist, &factory, epoch);
            for r in dist.rank_ids() {
                let key = |d: &Distribution| {
                    let mut ts: Vec<(u64, u64)> = d
                        .tasks_on(r)
                        .iter()
                        .map(|t| (t.id.as_u64(), t.load.get().to_bits()))
                        .collect();
                    ts.sort_unstable();
                    ts
                };
                assert_eq!(
                    key(&a.distribution),
                    key(&b.distribution),
                    "epoch {epoch}, rank {r}: constant workload must be bit-identical"
                );
            }
        }
    }

    /// On a drifting workload the predictive adapter still conserves
    /// tasks and load, and its migrations replay onto the input.
    #[test]
    fn predictive_adapter_is_consistent_under_drift() {
        use tempered_core::ids::TaskId;
        use tempered_core::load::Load;
        let mut dist = concentrated(8, 2, 15);
        let factory = RngFactory::new(6);
        let mut pred = DistributedPredictiveGrapevineLb::default();
        for epoch in 0..3u64 {
            let r = pred.rebalance(&dist, &factory, epoch);
            let mut replay = dist.clone();
            replay.apply(&r.migrations).unwrap();
            assert_eq!(replay.num_tasks(), r.distribution.num_tasks());
            assert!(r.distribution.total_load().approx_eq(dist.total_load()));
            dist = r.distribution;
            for t in 0..dist.num_tasks() as u64 {
                let old = dist.load_of(TaskId::new(t)).unwrap().get();
                dist.set_load(TaskId::new(t), Load::new(old * 1.5 + 0.25))
                    .unwrap();
            }
        }
    }

    #[test]
    fn balancer_trait_adapter_works() {
        let dist = concentrated(16, 2, 20);
        let mut lb = DistributedTemperedLb {
            config: quick_cfg(),
            model: NetworkModel::default(),
        };
        let r = lb.rebalance(&dist, &RngFactory::new(2), 0);
        assert!(r.final_imbalance < r.initial_imbalance);
        let mut replay = dist.clone();
        replay.apply(&r.migrations).unwrap();
        for rank in replay.rank_ids() {
            assert!(replay
                .rank_load(rank)
                .approx_eq(r.distribution.rank_load(rank)));
        }
    }

    mod crash {
        use super::*;
        use crate::fault::CrashEvent;
        use crate::health::HealthConfig;
        use crate::reliable::RetryConfig;

        fn crash_cfg() -> LbProtocolConfig {
            quick_cfg()
                .hardened(RetryConfig::default())
                .crash_tolerant(HealthConfig::default())
        }

        fn crash_plan(crashes: Vec<CrashEvent>) -> FaultPlan {
            FaultPlan {
                crashes,
                ..FaultPlan::none()
            }
        }

        /// Mid-gossip crash of rank 0 — simultaneously the TD
        /// coordinator and the collective-tree root, the hardest rank to
        /// lose. Survivors must detect, re-form, and finish with every
        /// task that was homed on a survivor.
        #[test]
        fn coordinator_crash_mid_gossip_survivors_complete() {
            let dist = concentrated(16, 2, 30);
            let out = run_distributed_lb_with_faults(
                &dist,
                crash_cfg(),
                NetworkModel::default(),
                &RngFactory::new(7),
                crash_plan(vec![CrashEvent::fatal(RankId::new(0), 2e-4)]),
            );
            assert_eq!(out.degraded_ranks, 0, "survivors restart, not degrade");
            // Rank 0's 30 tasks died with it (the LB layer does not
            // restore data; see empire's checkpoints). Rank 1's 30 live.
            assert_eq!(out.distribution.num_tasks(), 30);
            assert_eq!(
                out.distribution.tasks_on(RankId::new(0)).len(),
                0,
                "no task may be assigned to a corpse"
            );
            assert!(out.tasks_migrated > 0, "survivors rebalanced rank 1's load");
        }

        #[test]
        fn quarter_of_ranks_crashing_still_completes() {
            let dist = concentrated(16, 4, 20);
            // 4 of 16 ranks (25%) die at staggered times mid-protocol,
            // including one hot rank.
            let crashes = vec![
                CrashEvent::fatal(RankId::new(2), 1e-4),
                CrashEvent::fatal(RankId::new(5), 3e-4),
                CrashEvent::fatal(RankId::new(9), 3e-4),
                CrashEvent::fatal(RankId::new(14), 6e-4),
            ];
            let out = run_distributed_lb_with_faults(
                &dist,
                crash_cfg(),
                NetworkModel::default(),
                &RngFactory::new(11),
                crash_plan(crashes),
            );
            assert_eq!(out.degraded_ranks, 0);
            // Hot ranks 0,1,3 survive with 20 tasks each; hot rank 2 died.
            assert_eq!(out.distribution.num_tasks(), 60);
            for dead in [2u32, 5, 9, 14] {
                assert_eq!(out.distribution.tasks_on(RankId::new(dead)).len(), 0);
            }
            // The survivor set still balances: well under the initial
            // concentration (3 hot ranks / 12 survivors → I₀ = 3).
            assert!(out.final_imbalance < out.initial_imbalance);
        }

        #[test]
        fn crash_runs_are_deterministic() {
            let dist = concentrated(16, 2, 25);
            let run = || {
                run_distributed_lb_with_faults(
                    &dist,
                    crash_cfg(),
                    NetworkModel::default(),
                    &RngFactory::new(23),
                    crash_plan(vec![CrashEvent::fatal(RankId::new(3), 2e-4)]),
                )
            };
            let a = run();
            let b = run();
            assert_eq!(a.final_imbalance.to_bits(), b.final_imbalance.to_bits());
            assert_eq!(a.report.events_delivered, b.report.events_delivered);
            assert_eq!(a.report.faults.crash_dropped, b.report.faults.crash_dropped);
            for r in a.distribution.rank_ids() {
                assert_eq!(
                    a.distribution.rank_load(r).get().to_bits(),
                    b.distribution.rank_load(r).get().to_bits()
                );
            }
        }

        /// Enabling crash tolerance on a crash-free run must not change
        /// the committed assignment: heartbeats perturb message timing
        /// (extra latency draws), but the protocol is deterministic
        /// under reordering, so the final distribution is identical to
        /// the plain hardened run.
        #[test]
        fn health_layer_is_assignment_neutral_without_crashes() {
            let dist = concentrated(16, 2, 30);
            let plain = run_distributed_lb(
                &dist,
                quick_cfg().hardened(RetryConfig::default()),
                NetworkModel::default(),
                &RngFactory::new(31),
            );
            let tolerant = run_distributed_lb(
                &dist,
                crash_cfg(),
                NetworkModel::default(),
                &RngFactory::new(31),
            );
            assert_eq!(tolerant.degraded_ranks, 0);
            for r in plain.distribution.rank_ids() {
                let mut a: Vec<_> = plain
                    .distribution
                    .tasks_on(r)
                    .iter()
                    .map(|t| t.id)
                    .collect();
                let mut b: Vec<_> = tolerant
                    .distribution
                    .tasks_on(r)
                    .iter()
                    .map(|t| t.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "assignment must not depend on heartbeat traffic");
            }
        }

        /// A warm-restarted rank that was already declared dead must not
        /// disrupt the survivors: it either learns of its own death from
        /// the periodic stand-down nudge and degrades, or (if it wakes
        /// after the run) stays silent. Either way the survivors' result
        /// stands.
        #[test]
        fn warm_restarted_zombie_cannot_disrupt_survivors() {
            let dist = concentrated(16, 2, 30);
            let out = run_distributed_lb_with_faults(
                &dist,
                crash_cfg(),
                NetworkModel::default(),
                &RngFactory::new(41),
                crash_plan(vec![CrashEvent::with_restart(RankId::new(3), 2e-4, 8e-3)]),
            );
            // Rank 3 held no tasks; all 60 survive regardless of when
            // (or whether) the zombie stood down.
            assert_eq!(out.distribution.num_tasks(), 60);
            assert_eq!(out.distribution.tasks_on(RankId::new(3)).len(), 0);
            assert!(out.final_imbalance < out.initial_imbalance);
        }
    }

    mod partition {
        use super::*;
        use crate::fault::PartitionWindow;
        use crate::health::HealthConfig;
        use crate::reliable::RetryConfig;

        fn partition_cfg() -> LbProtocolConfig {
            quick_cfg()
                .hardened(RetryConfig::default())
                .crash_tolerant(HealthConfig::default())
                .partition_tolerant(PartitionConfig {
                    park_deadline: 0.05,
                })
        }

        fn split(side: &[u32], start: f64, end: Option<f64>) -> FaultPlan {
            FaultPlan {
                partitions: vec![PartitionWindow {
                    side: side.iter().map(|&r| RankId::new(r)).collect(),
                    start,
                    end,
                }],
                ..FaultPlan::none()
            }
        }

        /// A permanent 12/4 split: the majority detects the minority
        /// dead, restarts, and commits; the minority loses quorum, parks
        /// read-only, and finishes on its original placement at the park
        /// deadline. No task is lost and no rank touches a task across
        /// the cut.
        #[test]
        fn minority_parks_majority_commits_on_clean_split() {
            let dist = concentrated(16, 4, 20);
            let side = [1u32, 5, 9, 13]; // includes hot rank 1
            let out = run_distributed_lb_with_faults(
                &dist,
                partition_cfg(),
                NetworkModel::default(),
                &RngFactory::new(17),
                split(&side, 2e-4, None),
            );
            assert!(out.report.completed, "every rank must finish");
            assert_eq!(out.degraded_ranks, 0);
            assert_eq!(out.parked_ranks, 4, "the whole minority parks");
            assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
            // The parked hot rank kept its original tasks: split-brain
            // prevention means the minority moved nothing.
            assert_eq!(out.distribution.tasks_on(RankId::new(1)).len(), 20);
            // The majority still balanced its own side (the parked hot
            // rank pins the *global* max, so look at migrations, not the
            // global imbalance).
            assert!(out.tasks_migrated > 0);
            assert!(
                out.distribution.tasks_on(RankId::new(0)).len() < 20,
                "majority hot ranks shed load to their own component"
            );
        }

        /// A 50/50 split leaves *neither* side with a strict majority:
        /// both park, nobody commits, and the input placement survives
        /// untouched — the conservative outcome when no component can
        /// prove it owns the run.
        #[test]
        fn even_split_parks_everyone_and_commits_nothing() {
            let dist = concentrated(16, 4, 20);
            let side = [0u32, 1, 2, 3, 4, 5, 6, 7];
            let out = run_distributed_lb_with_faults(
                &dist,
                partition_cfg(),
                NetworkModel::default(),
                &RngFactory::new(19),
                split(&side, 2e-4, None),
            );
            assert!(out.report.completed);
            assert_eq!(out.parked_ranks, 16, "no quorum on either side");
            assert_eq!(out.tasks_migrated, 0, "nobody committed");
            for r in dist.rank_ids() {
                assert_eq!(
                    out.distribution.tasks_on(r).len(),
                    dist.tasks_on(r).len(),
                    "parked ranks keep their original placement"
                );
            }
        }

        /// The partition heals mid-run: parked ranks knock, the majority
        /// leader re-admits them under a heal-fenced view, and every rank
        /// finishes un-parked — either re-joined into a restarted run or
        /// standing down in agreement with the majority's commit.
        #[test]
        fn healed_partition_unparks_the_minority() {
            let dist = concentrated(16, 4, 20);
            let side = [1u32, 5, 9, 13];
            let out = run_distributed_lb_with_faults(
                &dist,
                partition_cfg(),
                NetworkModel::default(),
                &RngFactory::new(23),
                split(&side, 2e-4, Some(0.02)),
            );
            assert!(out.report.completed);
            assert_eq!(out.degraded_ranks, 0);
            assert_eq!(out.parked_ranks, 0, "the heal re-admitted every rank");
            assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
        }

        /// Same seed, same plan ⇒ bit-identical outcome, parked set and
        /// event count included: partitions and heals route through the
        /// same deterministic machinery as everything else.
        #[test]
        fn partitioned_runs_are_deterministic() {
            let dist = concentrated(16, 4, 20);
            let run = || {
                run_distributed_lb_with_faults(
                    &dist,
                    partition_cfg(),
                    NetworkModel::default(),
                    &RngFactory::new(29),
                    split(&[1u32, 5, 9, 13], 2e-4, Some(0.02)),
                )
            };
            let a = run();
            let b = run();
            assert_eq!(a.final_imbalance.to_bits(), b.final_imbalance.to_bits());
            assert_eq!(a.report.events_delivered, b.report.events_delivered);
            assert_eq!(a.parked_ranks, b.parked_ranks);
            for r in a.distribution.rank_ids() {
                assert_eq!(
                    a.distribution.rank_load(r).get().to_bits(),
                    b.distribution.rank_load(r).get().to_bits()
                );
            }
        }

        /// Stacking the partition layer on a fault-free run must not
        /// change the committed assignment: the quorum gate only
        /// activates on a view change, and no knock or park timer ever
        /// fires without one.
        #[test]
        fn partition_layer_is_assignment_neutral_without_faults() {
            let dist = concentrated(16, 2, 30);
            let crash_only = run_distributed_lb(
                &dist,
                quick_cfg()
                    .hardened(RetryConfig::default())
                    .crash_tolerant(HealthConfig::default()),
                NetworkModel::default(),
                &RngFactory::new(31),
            );
            let tolerant = run_distributed_lb(
                &dist,
                partition_cfg(),
                NetworkModel::default(),
                &RngFactory::new(31),
            );
            assert_eq!(tolerant.parked_ranks, 0);
            assert_eq!(tolerant.degraded_ranks, 0);
            for r in crash_only.distribution.rank_ids() {
                let mut a: Vec<_> = crash_only
                    .distribution
                    .tasks_on(r)
                    .iter()
                    .map(|t| t.id)
                    .collect();
                let mut b: Vec<_> = tolerant
                    .distribution
                    .tasks_on(r)
                    .iter()
                    .map(|t| t.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "the partition layer must be inert without faults");
            }
        }

        /// A lossy (gray) link between two ranks is absorbed by the
        /// reliable layer and the link-suspect attribution: nobody is
        /// declared dead over a path that still mostly works, and the
        /// run commits on all ranks.
        #[test]
        fn gray_link_does_not_kill_a_live_peer() {
            use crate::fault::{LinkFault, LinkFaultKind};
            let dist = concentrated(16, 2, 30);
            let plan = FaultPlan {
                links: vec![LinkFault {
                    src: vec![RankId::new(0)],
                    dst: vec![RankId::new(7)],
                    start: 0.0,
                    end: None,
                    kind: LinkFaultKind::Lossy { p: 0.4 },
                }],
                ..FaultPlan::none()
            };
            let out = run_distributed_lb_with_faults(
                &dist,
                partition_cfg(),
                NetworkModel::default(),
                &RngFactory::new(37),
                plan,
            );
            assert!(out.report.completed);
            assert_eq!(out.degraded_ranks, 0, "a lossy link is not a dead peer");
            assert_eq!(out.parked_ranks, 0);
            assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
            assert!(out.reliable.retransmitted > 0, "the loss was real");
        }
    }

    #[test]
    fn async_quality_comparable_to_analysis_mode() {
        // The async path and the analysis-mode driver implement the same
        // algorithm; their final imbalances should land in the same
        // regime (not identical: message orderings differ).
        use tempered_core::refine::{refine, RefineConfig};
        let dist = concentrated(32, 2, 50);
        let sync = refine(
            &dist,
            &RefineConfig {
                trials: 2,
                iters: 4,
                ..RefineConfig::tempered()
            },
            &RngFactory::new(21),
            0,
        );
        let asynch = run_distributed_lb(
            &dist,
            quick_cfg(),
            NetworkModel::default(),
            &RngFactory::new(21),
        );
        assert!(asynch.final_imbalance < 2.0);
        assert!(sync.best_imbalance < 2.0);
    }
}
