//! Per-rank actor of the asynchronous LB protocol: the thin glue that
//! binds the pure [`GossipEngine`] to a [`Transport`] stack and an
//! executor.
//!
//! The layering (see `DESIGN.md` §9):
//!
//! ```text
//! GossipEngine   pure state machine: (epoch, LbMsg) → Vec<Command>
//! Transport      Raw | Reliable(RetryConfig) | Faulty(plan, ·)
//! LbRank         this file: interprets Commands, applies TxActions to a
//!                driver Ctx, records spans/instants, arms deadlines
//! driver         Simulator (discrete-event), parallel executor, or the
//!                zero-latency in-process LocalRunner
//! ```
//!
//! All protocol logic — stages, epochs, collectives, gossip, transfer,
//! commit — lives in [`super::engine`]; all delivery mechanics — sequence
//! numbers, acks, retransmission, dedup — live in [`super::transport`].
//! What remains here is strictly the impedance match: commands to
//! context calls, wire frames to transport calls, plus the two pieces of
//! driver-side policy the engine must not know about (the stage-deadline
//! watchdog and the degrade decision when delivery fails for good).

use super::config::LbProtocolConfig;
use super::engine::{Command, GossipEngine, Stage};
use super::messages::{payload_bytes, LbMsg, LbWire, TaskEntry};
use super::transport::{transport_for, RxEvent, Transport, TxAction};
use crate::health::HealthDetector;
use crate::reliable::ReliableStats;
use crate::sim::{Ctx, Protocol};
use std::collections::BTreeSet;
use tempered_core::ids::{RankId, TaskId};
use tempered_core::rng::RngFactory;
use tempered_obs::{EventKind, Recorder};

/// The per-rank protocol actor: engine + transport + driver glue.
#[derive(Debug)]
pub struct LbRank {
    me: RankId,
    num_ranks: usize,
    cfg: LbProtocolConfig,
    engine: GossipEngine,
    transport: Box<dyn Transport>,

    // Stage-liveness watchdog (driver-side policy).
    stage_seq: u64,
    degraded: bool,
    done: bool,

    // Crash tolerance (present iff `cfg.health` is set): the failure
    // detector, and the set of ranks the current membership view has
    // fenced out — the transport holds no state toward them and their
    // traffic is ignored.
    health: Option<HealthDetector>,
    fenced: BTreeSet<RankId>,

    // Partition tolerance (active iff `cfg.partition` is set): driver-side
    // mirror of the engine's parked flag, plus the park-deadline sequence
    // number that tells a live deadline from a stale one — same discipline
    // as the stage watchdog's `stage_seq`.
    parked_seen: bool,
    park_seq: u64,

    // Reusable scratch buffers for the per-message hot path: transport
    // actions and engine commands are drained in place instead of
    // allocating a fresh `Vec` per delivered message.
    scratch_actions: Vec<TxAction>,
    scratch_tx: Vec<TxAction>,
    scratch_cmds: Vec<Command>,

    // Observability.
    rec: Recorder,
    /// Currently open stage/round span: `(start ts, kind)`. Closed (and
    /// emitted) by the next stage transition or at protocol end.
    open_span: Option<(f64, EventKind)>,
}

impl LbRank {
    /// Create the actor for `me` with its resident tasks.
    pub fn new(
        me: RankId,
        num_ranks: usize,
        tasks: Vec<(TaskId, f64)>,
        cfg: LbProtocolConfig,
        factory: RngFactory,
    ) -> Self {
        LbRank {
            me,
            num_ranks,
            engine: GossipEngine::new(me, num_ranks, tasks, cfg.engine(), factory),
            transport: transport_for(&cfg, me, &factory),
            cfg,
            stage_seq: 0,
            degraded: false,
            done: false,
            health: None,
            fenced: BTreeSet::new(),
            parked_seen: false,
            park_seq: 0,
            scratch_actions: Vec::new(),
            scratch_tx: Vec::new(),
            scratch_cmds: Vec::new(),
            rec: Recorder::disabled(),
            open_span: None,
        }
    }

    /// Attach an observability recorder (disabled by default). Stage and
    /// gossip-round spans, retransmission/dedup/give-up instants, and
    /// end-of-run counters are recorded against it. Recording never
    /// consults the protocol's random streams, so it cannot perturb the
    /// run.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    // ---- accessors (delegated to the engine / transport) -----------------

    /// This rank's final task set `(id, load, home)` after the protocol.
    pub fn final_tasks(&self) -> &[TaskEntry] {
        self.engine.final_tasks()
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.engine.stage()
    }

    /// Whether this rank abandoned the protocol (retry budget exhausted
    /// or stage deadline missed) and reverted to a safe assignment.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether the protocol reached Done on this rank, normally or by
    /// degradation. A crashed rank never finishes; its engine state is
    /// whatever it held when it died.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Whether this rank sat out the run parked (quorum-less under a
    /// partition) and finished read-only on its original placement via
    /// the park deadline. `false` once a heal re-admitted it.
    pub fn parked(&self) -> bool {
        self.engine.is_parked()
    }

    /// Per-iteration records (symmetrically identical across ranks except
    /// for the local transfer counters).
    pub fn records(&self) -> &[super::engine::AsyncIterationRecord] {
        self.engine.records()
    }

    /// Initial imbalance (valid after Setup).
    pub fn initial_imbalance(&self) -> f64 {
        self.engine.initial_imbalance()
    }

    /// Best imbalance seen (valid after the run).
    pub fn best_imbalance(&self) -> f64 {
        self.engine.best_imbalance()
    }

    /// Tasks this rank fetched at commit (real migrations in).
    pub fn migrations_in(&self) -> usize {
        self.engine.migrations_in()
    }

    /// Tasks fetched *from* this rank at commit (real migrations out).
    pub fn migrations_out(&self) -> usize {
        self.engine.migrations_out()
    }

    /// Proposed tasks bounced back by NACKs across the whole run.
    pub fn nacks_received(&self) -> usize {
        self.engine.nacks_received()
    }

    /// Delivery-layer counters (all zero in best-effort mode).
    pub fn reliable_stats(&self) -> ReliableStats {
        self.transport.stats()
    }

    // ---- observability ---------------------------------------------------

    /// Close the open span (if any) at `now` and open a new one.
    fn span_open(&mut self, now: f64, kind: EventKind) {
        if !self.rec.is_enabled() {
            return;
        }
        self.span_close(now);
        self.open_span = Some((now, kind));
    }

    /// Close the open span (if any) at `now`.
    fn span_close(&mut self, now: f64) {
        if let Some((t0, kind)) = self.open_span.take() {
            self.rec.span(self.me.as_u32(), t0, now - t0, kind);
        }
    }

    /// Flush end-of-run counters into the shared metrics registry. Called
    /// once per rank, on normal completion or degradation.
    fn flush_metrics(&self) {
        self.rec.with_metrics(|m| {
            let s = self.transport.stats();
            m.counter_add("lb.reliable.sent", s.sent);
            m.counter_add("lb.reliable.retransmitted", s.retransmitted);
            m.counter_add("lb.reliable.acked", s.acked);
            m.counter_add("lb.reliable.duplicates_suppressed", s.duplicates_suppressed);
            m.counter_add("lb.reliable.gave_up", s.gave_up);
            m.counter_add("lb.reliable.revived", s.revived);
            m.counter_add("lb.migrations_in", self.engine.migrations_in() as u64);
            m.counter_add("lb.migrations_out", self.engine.migrations_out() as u64);
            m.counter_add("lb.nacks_received", self.engine.nacks_received() as u64);
            m.counter_add("lb.degraded_ranks", self.degraded as u64);
            m.counter_add("lb.parked_ranks", self.engine.is_parked() as u64);
            m.gauge_max("lb.initial_imbalance", self.engine.initial_imbalance());
            if self.engine.best_imbalance().is_finite() {
                m.gauge_max("lb.best_imbalance", self.engine.best_imbalance());
            }
        });
    }

    // ---- driver-side policy ----------------------------------------------

    fn arm_stage_deadline(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        if let Some(retry) = self.cfg.reliability {
            self.stage_seq += 1;
            ctx.schedule(
                retry.stage_deadline,
                LbWire::StageTimer {
                    stage_seq: self.stage_seq,
                },
            );
        }
    }

    /// Abandon the protocol after a delivery failure (see
    /// [`GossipEngine::abort`] for the revert policy). The rank then goes
    /// silent (no acks, no forwards), so peers that depend on it degrade
    /// through their own deadlines rather than acting on its abandoned
    /// state.
    fn degrade(&mut self, now: f64) {
        if self.done {
            return;
        }
        let stage = self.engine.abort();
        self.rec
            .instant(self.me.as_u32(), now, EventKind::Degraded { stage });
        self.degraded = true;
        self.done = true;
        self.span_close(now);
        self.flush_metrics();
    }

    // ---- crash tolerance -------------------------------------------------

    /// Heartbeat clock: beat to every unfenced peer (outside the reliable
    /// layer — a corpse must not burn anyone's retry budget), poll the
    /// failure detector, and re-arm. The chain stops once the rank is
    /// done, so a completed run quiesces.
    fn on_heartbeat_timer(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        if self.done {
            return;
        }
        let Some(hc) = self.cfg.health else { return };
        let parked = self.engine.is_parked();
        for r in (0..self.num_ranks).map(RankId::from) {
            if r == self.me {
                continue;
            }
            if parked && (self.fenced.contains(&r) || self.fenced.is_empty()) {
                // Parked: knock at the other side of the partition — or,
                // parked on hearsay with nobody fenced locally (a zombie
                // that heard of its own death), at everyone. A knock that
                // gets through proves the path works again; the
                // quorum-holding component's leader answers with a heal.
                ctx.send(r, LbWire::Raw(LbMsg::Knock), LbMsg::Knock.wire_bytes());
            } else if self.fenced.contains(&r) {
                // Periodic stand-down nudge instead of a heartbeat: a
                // warm-restarted zombie wakes with no timers and (being
                // fenced) receives no protocol traffic, so this is the
                // only way it ever learns of its own death and stands
                // down — degrading, or parking under partition tolerance
                // — instead of idling forever.
                let v = self.engine.view();
                let msg = LbMsg::View {
                    base: v.base_gen(),
                    dead: v.dead().iter().copied().collect(),
                };
                let bytes = payload_bytes(&msg, self.cfg.bytes_per_task);
                ctx.send(r, LbWire::Raw(msg), bytes);
            } else {
                ctx.send(r, LbWire::Heartbeat, LbWire::Heartbeat.wire_bytes());
            }
        }
        ctx.schedule(hc.period, LbWire::HeartbeatTimer);
        let newly = match &mut self.health {
            Some(d) => d.tick(ctx.now()),
            None => Vec::new(),
        };
        if !newly.is_empty() {
            self.on_deaths(ctx, &newly);
        }
    }

    /// Declare `dead` ranks crashed: record the suspicion, hand the view
    /// change to the engine (which fences, floods, and restarts on the
    /// survivors), and sync driver-side fencing before interpreting the
    /// resulting commands — the View flood to the corpses themselves must
    /// bypass the reliable channel.
    fn on_deaths(&mut self, ctx: &mut Ctx<'_, LbWire>, dead: &[RankId]) {
        if self.done {
            return;
        }
        for &r in dead {
            self.rec.instant(
                self.me.as_u32(),
                ctx.now(),
                EventKind::Suspected { rank: r.as_u32() },
            );
        }
        let set: BTreeSet<RankId> = dead.iter().copied().collect();
        let mut commands = self.engine.on_view(&set);
        self.apply_view(ctx.now());
        self.run_commands(ctx, &mut commands);
        self.sync_park(ctx);
    }

    /// Sync driver-side fencing with the engine's membership view, both
    /// ways. Newly dead ranks: drop transport state toward them (so
    /// orphaned retry timers settle instead of degrading us) and pin
    /// them suspected in the detector. Newly live ranks (a heal
    /// re-admitted them): lift the fence and reset their detector
    /// history — their silence during the partition must not instantly
    /// re-suspect them.
    fn apply_view(&mut self, now: f64) {
        let view_dead = self.engine.view().dead();
        for r in view_dead.iter().copied() {
            if self.fenced.insert(r) {
                self.transport.fence(r);
                if let Some(d) = &mut self.health {
                    d.force_suspect(r);
                }
            }
        }
        let healed: Vec<RankId> = self
            .fenced
            .iter()
            .copied()
            .filter(|r| !view_dead.contains(r))
            .collect();
        for r in healed {
            self.fenced.remove(&r);
            if let Some(d) = &mut self.health {
                d.reinstate(r, now);
            }
        }
    }

    /// Mirror the engine's parked state into driver-side policy. Entering
    /// a park arms the park deadline and retires the stage watchdog — a
    /// quorum-less stall is deliberate, not a delivery failure. Leaving
    /// one (a heal restarted or finished us) invalidates any armed
    /// deadline by bumping the sequence number. Call after every batch of
    /// engine commands that could change the parked state.
    fn sync_park(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        let parked = self.engine.is_parked() && !self.done;
        if parked && !self.parked_seen {
            self.parked_seen = true;
            self.park_seq += 1;
            self.stage_seq += 1;
            if let Some(pc) = self.cfg.partition {
                ctx.schedule(
                    pc.park_deadline,
                    LbWire::ParkTimer {
                        park_seq: self.park_seq,
                    },
                );
            }
        } else if !parked && self.parked_seen {
            self.parked_seen = false;
            self.park_seq += 1;
        }
    }

    // ---- command / action interpreters -----------------------------------

    fn apply_actions(&mut self, ctx: &mut Ctx<'_, LbWire>, actions: &mut Vec<TxAction>) {
        for action in actions.drain(..) {
            match action {
                TxAction::Wire { to, wire, bytes } => ctx.send(to, wire, bytes),
                TxAction::Timer { delay, wire } => ctx.schedule(delay, wire),
            }
        }
    }

    fn run_commands(&mut self, ctx: &mut Ctx<'_, LbWire>, commands: &mut Vec<Command>) {
        for command in commands.drain(..) {
            match command {
                Command::Send { to, msg } => {
                    if self.fenced.contains(&to) {
                        // A fenced peer gets no reliable-channel state:
                        // its acks will never come and retries would
                        // burn the budget. Only the View flood targets
                        // corpses (to stand down warm-restarted
                        // zombies), and best-effort is enough for it.
                        let bytes = payload_bytes(&msg, self.cfg.bytes_per_task);
                        ctx.send(to, LbWire::Raw(msg), bytes);
                        continue;
                    }
                    let mut actions = std::mem::take(&mut self.scratch_tx);
                    self.transport.send(to, msg, &mut actions);
                    self.apply_actions(ctx, &mut actions);
                    self.scratch_tx = actions;
                }
                Command::AdvanceEpoch { .. } => {
                    // Informational; epoch discipline is internal to the
                    // engine and the drivers here don't schedule by epoch.
                }
                Command::OpenSpan(kind) => {
                    self.span_open(ctx.now(), kind);
                    self.arm_stage_deadline(ctx);
                }
                Command::Instant(kind) => {
                    self.rec.instant(self.me.as_u32(), ctx.now(), kind);
                }
                Command::Finished => {
                    self.done = true;
                    self.span_close(ctx.now());
                    self.flush_metrics();
                }
            }
        }
    }
}

impl Protocol for LbRank {
    type Msg = LbWire;

    fn on_start(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        if let Some(hc) = self.cfg.health {
            self.health = Some(HealthDetector::new(self.me, self.num_ranks, hc, ctx.now()));
            ctx.schedule(hc.period, LbWire::HeartbeatTimer);
        }
        let mut commands = self.engine.start();
        self.run_commands(ctx, &mut commands);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, LbWire>, from: RankId, wire: LbWire) {
        // A degraded rank is out of the protocol entirely: it neither
        // processes nor acknowledges, so peers waiting on it time out
        // instead of building on its abandoned state.
        if self.degraded {
            return;
        }
        if matches!(wire, LbWire::HeartbeatTimer) {
            self.on_heartbeat_timer(ctx);
            return;
        }
        // The stage watchdog is driver-side policy, not delivery
        // mechanics: a stale counter means the stage advanced since the
        // timer was armed; only a live counter indicates a stall.
        if let LbWire::StageTimer { stage_seq } = wire {
            if !self.done && stage_seq == self.stage_seq {
                self.degrade(ctx.now());
            }
            return;
        }
        // The park deadline: no heal arrived in time, finish read-only on
        // the original placement. A stale sequence number means a heal
        // un-parked (or re-parked) us since the timer was armed.
        if let LbWire::ParkTimer { park_seq } = wire {
            if !self.done && self.parked_seen && park_seq == self.park_seq {
                let mut commands = self.engine.finish_parked();
                self.run_commands(ctx, &mut commands);
            }
            return;
        }
        // Network traffic from a fenced rank is a zombie talking; ignore
        // it entirely (in particular, don't let it prove liveness). Under
        // partition tolerance, membership traffic is the one exception: a
        // Knock is precisely a fenced rank calling (the heal trigger),
        // and a healed View flood or a Heal offer reaches a parked rank
        // *from* ranks it fenced on its own side of the split. The
        // engine's heal fence (view base) decides staleness; hearsay
        // still can't prove liveness, so the detector is not fed.
        let from_fenced = self.fenced.contains(&from);
        if from_fenced {
            let membership = self.cfg.partition.is_some()
                && matches!(
                    &wire,
                    LbWire::Raw(LbMsg::Knock | LbMsg::View { .. } | LbMsg::Heal { .. })
                        | LbWire::Data {
                            msg: LbMsg::Knock | LbMsg::View { .. } | LbMsg::Heal { .. },
                            ..
                        }
                );
            if !membership {
                return;
            }
        }
        // Any frame that crossed the network proves the sender was alive
        // when it sent — cheaper and tighter than heartbeats alone. An
        // ack additionally proves the *outbound* path to the sender
        // delivered a frame, which is the direction the link-quality
        // score tracks.
        if from != self.me && !from_fenced {
            if let Some(d) = &mut self.health {
                d.on_heartbeat(from, ctx.now());
                if self.cfg.partition.is_some() && matches!(wire, LbWire::Ack { .. }) {
                    d.on_link_outcome(from, true);
                }
            }
        }
        if matches!(wire, LbWire::Heartbeat) {
            return;
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let rx = self.transport.receive(from, wire, &mut actions);
        match rx {
            RxEvent::Deliver(msg) => {
                self.apply_actions(ctx, &mut actions);
                // Self-death valve: a View naming *this* rank dead means
                // some component fenced us out and moved on (we were
                // warm-restarted, falsely suspected during a long stall,
                // or on the wrong side of a partition).
                if let LbMsg::View { base, dead } = &msg {
                    if dead.contains(&self.me) {
                        if self.cfg.partition.is_some() {
                            // Partition mode: never self-destruct on
                            // hearsay — a current view fencing us out is
                            // partition evidence, so park read-only and
                            // knock; a stale one (lower heal fence) is a
                            // crossing flood from before a heal that
                            // already re-admitted us.
                            if *base >= self.engine.view().base_gen() {
                                let mut commands = self.engine.park_self();
                                self.run_commands(ctx, &mut commands);
                                self.sync_park(ctx);
                            }
                        } else {
                            // Crash-stop mode: stand down rather than
                            // disrupt the survivors' new view.
                            self.degrade(ctx.now());
                        }
                        self.scratch_actions = actions;
                        return;
                    }
                }
                let mut commands = std::mem::take(&mut self.scratch_cmds);
                self.engine.on_message_into(&mut commands, from, msg);
                self.apply_view(ctx.now());
                self.run_commands(ctx, &mut commands);
                commands.clear();
                self.scratch_cmds = commands;
                self.sync_park(ctx);
            }
            RxEvent::Duplicate { from, seq } => {
                self.apply_actions(ctx, &mut actions);
                self.rec.instant(
                    self.me.as_u32(),
                    ctx.now(),
                    EventKind::DuplicateSuppressed {
                        from: from.as_u32(),
                        seq,
                    },
                );
            }
            RxEvent::Retransmitted { to, seq } => {
                self.rec.instant(
                    self.me.as_u32(),
                    ctx.now(),
                    EventKind::Retransmit {
                        to: to.as_u32(),
                        seq,
                    },
                );
                self.apply_actions(ctx, &mut actions);
            }
            RxEvent::GaveUp { to, seq, msg } => {
                self.rec.instant(
                    self.me.as_u32(),
                    ctx.now(),
                    EventKind::GaveUp { to: to.as_u32() },
                );
                let vouched = self.cfg.partition.is_some()
                    && !self.fenced.contains(&to)
                    && self.health.as_ref().is_some_and(|d| !d.is_suspected(to));
                if vouched {
                    // Gray-link attribution: the failure detector still
                    // vouches for the peer — its frames keep arriving —
                    // so the *path* ate this payload, not the peer.
                    // Debit the link's quality score and reinstate the
                    // message with a fresh retry budget instead of
                    // declaring a live peer dead. A link that never
                    // recovers stalls the stage, and the stage deadline
                    // backstops that.
                    if let Some(d) = &mut self.health {
                        d.on_link_outcome(to, false);
                    }
                    self.rec.instant(
                        self.me.as_u32(),
                        ctx.now(),
                        EventKind::LinkSuspect { to: to.as_u32() },
                    );
                    self.transport.reinstate(to, seq, msg, &mut actions);
                    self.apply_actions(ctx, &mut actions);
                } else if self.health.is_some() {
                    // Retry exhaustion toward one peer under crash
                    // tolerance means that peer is gone, not that we
                    // are: declare it dead and restart on the survivors
                    // instead of abandoning the protocol.
                    if !self.fenced.contains(&to) {
                        self.on_deaths(ctx, &[to]);
                    }
                } else {
                    self.degrade(ctx.now());
                }
            }
            RxEvent::Corrupt { from } => {
                // Checksum mismatch: the frame was damaged in flight and
                // is dropped *without an ack*, so the sender's reliable
                // channel re-delivers the original. Best-effort frames
                // are simply lost — same contract as a drop.
                self.apply_actions(ctx, &mut actions);
                self.rec.instant(
                    self.me.as_u32(),
                    ctx.now(),
                    EventKind::CorruptDropped {
                        from: from.as_u32(),
                    },
                );
            }
            RxEvent::Nothing => self.apply_actions(ctx, &mut actions),
        }
        // Unapplied leftovers (e.g. the non-vouched GaveUp paths) are
        // dropped, exactly as the old per-message `Vec` was; the shell is
        // kept for the next message.
        actions.clear();
        self.scratch_actions = actions;
    }

    fn is_done(&self) -> bool {
        self.done
    }

    /// The LB wire format checksums its frames (CRC32 over the canonical
    /// encoding), so in-flight corruption is modeled faithfully: the
    /// damaged frame still *arrives* and the receiver detects and drops
    /// it (see [`LbWire::damaged`]), rather than the executor silently
    /// treating damage as loss.
    fn corrupted(msg: &LbWire) -> Option<LbWire> {
        Some(msg.damaged())
    }
}
