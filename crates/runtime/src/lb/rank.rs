//! Per-rank state machine of the asynchronous TemperedLB protocol.
//!
//! The protocol mirrors the paper's vt implementation structure:
//!
//! ```text
//! Setup      allreduce (Σ load, max load) → every rank knows ℓ_ave, ℓ_max
//! ┌─ per (trial, iteration) ──────────────────────────────────────────┐
//! │ Gossip     Algorithm 1, barrier-free; sequenced by termination     │
//! │            detection (epoch 2·(t·n_iters + i))                     │
//! │ Proposals  Algorithm 2 locally; lazy-transfer messages inform      │
//! │            recipients of their new logical tasks (epoch … + 1)     │
//! │ Evaluate   allreduce of proposed max load → identical I_proposed   │
//! │            at every rank → symmetric best-tracking, no coordinator │
//! └────────────────────────────────────────────────────────────────────┘
//! Commit     revert to best proposal; final owners fetch task data
//!            from home ranks (lazy migration); last TD epoch
//! Done
//! ```
//!
//! Every rank advances through stages *locally*, driven only by received
//! messages; out-of-order messages from ranks that advanced earlier are
//! buffered by epoch and replayed (see [`super::messages::LbMsg`]).

use super::messages::{LbMsg, TaskEntry};
use crate::collective::{LoadSummary, ReduceSlot, Tree};
use crate::sim::{Ctx, Protocol};
use crate::termination::{TdMsg, TerminationDetector};
use rand::rngs::SmallRng;
use std::collections::HashMap;
use tempered_core::gossip::sample_target;
use tempered_core::ids::{RankId, TaskId};
use tempered_core::knowledge::Knowledge;
use tempered_core::load::Load;
use tempered_core::rng::RngFactory;
use tempered_core::task::Task;
use tempered_core::transfer::{transfer_stage, TransferConfig};

/// Configuration of the asynchronous protocol.
#[derive(Clone, Copy, Debug)]
pub struct LbProtocolConfig {
    /// Independent trials (`n_trials`).
    pub trials: usize,
    /// Iterations per trial (`n_iters`).
    pub iters: usize,
    /// Gossip fanout `f`.
    pub fanout: usize,
    /// Gossip round limit `k`.
    pub rounds: usize,
    /// Transfer-stage knobs (criterion, CMF, ordering, threshold).
    pub transfer: TransferConfig,
    /// Modeled payload bytes per migrated task (commit-stage data volume).
    pub bytes_per_task: usize,
    /// Enable Menon et al.'s negative acknowledgements: recipients bounce
    /// proposed tasks that would push them past `ℓ_ave`. The paper drops
    /// this mechanism (§V-A); the flag exists to measure that choice.
    pub use_nacks: bool,
}

impl Default for LbProtocolConfig {
    fn default() -> Self {
        LbProtocolConfig {
            trials: 10,
            iters: 8,
            fanout: 6,
            rounds: 10,
            transfer: TransferConfig::tempered(),
            bytes_per_task: 65_536,
            use_nacks: false,
        }
    }
}

impl LbProtocolConfig {
    /// A GrapevineLB-equivalent configuration: single trial, single
    /// iteration, original criterion and CMF, arbitrary ordering.
    pub fn grapevine() -> Self {
        LbProtocolConfig {
            trials: 1,
            iters: 1,
            transfer: TransferConfig::grapevine(),
            ..Default::default()
        }
    }
}

/// Protocol stage (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Waiting for the initial allreduce.
    Setup,
    /// Gossip epoch in progress.
    Gossip,
    /// Proposal epoch in progress.
    Proposals,
    /// Waiting for the evaluation allreduce.
    Evaluate,
    /// Commit epoch (lazy migration) in progress.
    Commit,
    /// Finished.
    Done,
}

/// One `(trial, iteration, imbalance)` record, mirroring
/// `tempered_core::refine::IterationRecord` for the async path.
#[derive(Clone, Copy, Debug)]
pub struct AsyncIterationRecord {
    /// Trial index (0-based).
    pub trial: usize,
    /// Iteration index (1-based).
    pub iteration: usize,
    /// Globally agreed imbalance after this iteration's proposals.
    pub imbalance: f64,
    /// Transfers this rank accepted in the iteration.
    pub local_transfers: usize,
    /// Candidates this rank rejected in the iteration.
    pub local_rejected: usize,
}

/// The per-rank protocol actor.
#[derive(Debug)]
pub struct LbRank {
    me: RankId,
    num_ranks: usize,
    cfg: LbProtocolConfig,
    factory: RngFactory,
    tree: Tree,
    det: TerminationDetector,

    // Task state.
    original: Vec<TaskEntry>,
    current: Vec<TaskEntry>,
    best: Vec<TaskEntry>,

    // Collective state.
    slots: HashMap<u32, ReduceSlot>,

    // Globals agreed in Setup.
    l_ave: f64,
    /// Initial imbalance (valid after Setup).
    pub initial_imbalance: f64,
    /// Best imbalance seen (valid after the run).
    pub best_imbalance: f64,

    // Iteration cursor.
    trial: usize,
    iter: usize, // 0-based internally
    stage: Stage,

    // Gossip state for the current iteration.
    knowledge: Knowledge,
    gossip_rng: Option<SmallRng>,

    // Epoch-stamped buffering of early messages.
    buffered: Vec<(RankId, LbMsg)>,

    // Statistics.
    /// Per-iteration records (symmetrically identical across ranks except
    /// for the local transfer counters).
    pub records: Vec<AsyncIterationRecord>,
    /// Tasks this rank fetched at commit (real migrations in).
    pub migrations_in: usize,
    /// Tasks fetched *from* this rank at commit (real migrations out).
    pub migrations_out: usize,
    /// Proposed tasks bounced back by NACKs across the whole run
    /// (always 0 unless [`LbProtocolConfig::use_nacks`]).
    pub nacks_received: usize,
    iter_transfers: usize,
    iter_rejected: usize,

    done: bool,
}

impl LbRank {
    /// Create the actor for `me` with its resident tasks.
    pub fn new(
        me: RankId,
        num_ranks: usize,
        tasks: Vec<(TaskId, f64)>,
        cfg: LbProtocolConfig,
        factory: RngFactory,
    ) -> Self {
        let original: Vec<TaskEntry> = tasks
            .into_iter()
            .map(|(id, load)| TaskEntry {
                id,
                load,
                home: me,
            })
            .collect();
        LbRank {
            me,
            num_ranks,
            cfg,
            factory,
            tree: Tree::new(num_ranks, RankId::new(0)),
            det: TerminationDetector::new(me, num_ranks),
            current: original.clone(),
            best: original.clone(),
            original,
            slots: HashMap::new(),
            l_ave: 0.0,
            initial_imbalance: 0.0,
            best_imbalance: f64::INFINITY,
            trial: 0,
            iter: 0,
            stage: Stage::Setup,
            knowledge: Knowledge::new(),
            gossip_rng: None,
            buffered: Vec::new(),
            records: Vec::new(),
            migrations_in: 0,
            migrations_out: 0,
            nacks_received: 0,
            iter_transfers: 0,
            iter_rejected: 0,
            done: false,
        }
    }

    /// This rank's final task set `(id, load, home)` after the protocol.
    pub fn final_tasks(&self) -> &[TaskEntry] {
        &self.current
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    fn my_load(&self) -> f64 {
        self.current.iter().map(|t| t.load).sum()
    }

    // ---- epoch numbering -------------------------------------------------

    fn gossip_epoch(&self) -> u64 {
        2 * (self.trial * self.cfg.iters + self.iter) as u64 + 1
    }

    fn proposal_epoch(&self) -> u64 {
        self.gossip_epoch() + 1
    }

    fn commit_epoch(&self) -> u64 {
        2 * (self.cfg.trials * self.cfg.iters) as u64 + 1
    }

    fn eval_slot(&self) -> u32 {
        1 + (self.trial * self.cfg.iters + self.iter) as u32
    }

    // ---- send helpers ----------------------------------------------------

    fn send_basic(&mut self, ctx: &mut Ctx<'_, LbMsg>, to: RankId, msg: LbMsg) {
        self.send_basic_sized(ctx, to, msg, 0);
    }

    fn send_basic_sized(
        &mut self,
        ctx: &mut Ctx<'_, LbMsg>,
        to: RankId,
        msg: LbMsg,
        extra_bytes: usize,
    ) {
        debug_assert!(msg.basic_epoch().is_some(), "basic send of control msg");
        self.det.on_basic_send();
        let bytes = msg.wire_bytes() + extra_bytes;
        ctx.send(to, msg, bytes);
    }

    fn send_ctrl(&mut self, ctx: &mut Ctx<'_, LbMsg>, to: RankId, msg: LbMsg) {
        let bytes = msg.wire_bytes();
        ctx.send(to, msg, bytes);
    }

    fn emit_td(&mut self, ctx: &mut Ctx<'_, LbMsg>, outcome: crate::termination::TdOutcome) {
        for s in outcome.sends {
            self.send_ctrl(ctx, s.to, LbMsg::Td(s.msg));
        }
        if let Some(epoch) = outcome.terminated_epoch {
            self.on_epoch_terminated(ctx, epoch);
        }
    }

    // ---- collectives -----------------------------------------------------

    fn slot_mut(&mut self, slot: u32) -> &mut ReduceSlot {
        let children = self.tree.children(self.me).len();
        self.slots
            .entry(slot)
            .or_insert_with(|| ReduceSlot::new(children))
    }

    fn contribute(&mut self, ctx: &mut Ctx<'_, LbMsg>, slot: u32, value: LoadSummary) {
        if let Some(done) = self.slot_mut(slot).contribute(value) {
            self.reduce_complete(ctx, slot, done);
        }
    }

    fn reduce_complete(&mut self, ctx: &mut Ctx<'_, LbMsg>, slot: u32, summary: LoadSummary) {
        match self.tree.parent(self.me) {
            Some(parent) => {
                self.send_ctrl(ctx, parent, LbMsg::ReduceUp { slot, summary });
            }
            None => {
                // Root: broadcast the result and consume it locally.
                self.broadcast_down(ctx, slot, summary);
                self.on_reduce_result(ctx, slot, summary);
            }
        }
    }

    fn broadcast_down(&mut self, ctx: &mut Ctx<'_, LbMsg>, slot: u32, summary: LoadSummary) {
        for child in self.tree.children(self.me) {
            self.send_ctrl(ctx, child, LbMsg::ReduceDown { slot, summary });
        }
    }

    fn on_reduce_result(&mut self, ctx: &mut Ctx<'_, LbMsg>, slot: u32, summary: LoadSummary) {
        if slot == 0 {
            // Setup complete: everyone now knows ℓ_ave / ℓ_max.
            debug_assert_eq!(self.stage, Stage::Setup);
            self.l_ave = summary.average();
            self.initial_imbalance = summary.imbalance();
            self.best_imbalance = summary.imbalance();
            self.enter_gossip(ctx);
        } else {
            debug_assert_eq!(self.stage, Stage::Evaluate);
            debug_assert_eq!(slot, self.eval_slot());
            let imbalance = summary.imbalance();
            self.records.push(AsyncIterationRecord {
                trial: self.trial,
                iteration: self.iter + 1,
                imbalance,
                local_transfers: self.iter_transfers,
                local_rejected: self.iter_rejected,
            });
            if imbalance < self.best_imbalance {
                self.best_imbalance = imbalance;
                self.best = self.current.clone();
            }
            self.advance_iteration(ctx);
        }
    }

    // ---- stage transitions -------------------------------------------------

    fn enter_gossip(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        self.stage = Stage::Gossip;
        self.iter_transfers = 0;
        self.iter_rejected = 0;
        let epoch = self.gossip_epoch();
        self.det.start_epoch(epoch);
        self.knowledge = Knowledge::new();
        let mut rng = self
            .factory
            .rank_stream(b"agossip", self.me.as_u32() as u64, epoch);

        let my_load = self.my_load();
        if my_load < self.l_ave {
            // Algorithm 1 lines 6–12: seed and send round-1 messages.
            self.knowledge.insert(self.me, Load::new(my_load));
            let pairs = pairs_of(&self.knowledge);
            for _ in 0..self.cfg.fanout {
                if let Some(target) =
                    sample_target(&mut rng, self.num_ranks, self.me, &self.knowledge)
                {
                    self.send_basic(
                        ctx,
                        target,
                        LbMsg::Gossip {
                            epoch,
                            round: 1,
                            pairs: pairs.clone(),
                        },
                    );
                }
            }
        }
        self.gossip_rng = Some(rng);

        // Coordinator launches termination detection for this epoch.
        let kick = self.det.kick();
        self.emit_td(ctx, kick);
        self.replay_buffered(ctx);
    }

    fn on_gossip(&mut self, ctx: &mut Ctx<'_, LbMsg>, round: u32, pairs: Vec<(RankId, f64)>) {
        self.det.on_basic_recv();
        let typed: Vec<(RankId, Load)> = pairs
            .iter()
            .map(|&(r, l)| (r, Load::new(l)))
            .collect();
        let added = self.knowledge.merge_pairs(&typed);
        // Algorithm 1 lines 18–24, asynchronous interpretation: forward
        // only when the message taught us something new.
        if added > 0 && (round as usize) < self.cfg.rounds {
            let epoch = self.det.epoch();
            let out_pairs = pairs_of(&self.knowledge);
            let mut rng = self
                .gossip_rng
                .take()
                .expect("gossip rng present during gossip epoch");
            for _ in 0..self.cfg.fanout {
                if let Some(target) =
                    sample_target(&mut rng, self.num_ranks, self.me, &self.knowledge)
                {
                    self.send_basic(
                        ctx,
                        target,
                        LbMsg::Gossip {
                            epoch,
                            round: round + 1,
                            pairs: out_pairs.clone(),
                        },
                    );
                }
            }
            self.gossip_rng = Some(rng);
        }
    }

    fn on_epoch_terminated(&mut self, ctx: &mut Ctx<'_, LbMsg>, epoch: u64) {
        match self.stage {
            Stage::Gossip => {
                debug_assert_eq!(epoch, self.gossip_epoch());
                self.run_transfer(ctx);
            }
            Stage::Proposals => {
                debug_assert_eq!(epoch, self.proposal_epoch());
                self.enter_evaluate(ctx);
            }
            Stage::Commit => {
                debug_assert_eq!(epoch, self.commit_epoch());
                self.stage = Stage::Done;
                self.done = true;
            }
            s => panic!("unexpected epoch {epoch} termination in stage {s:?}"),
        }
    }

    fn run_transfer(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        self.stage = Stage::Proposals;
        let epoch = self.proposal_epoch();
        self.det.start_epoch(epoch);

        // Algorithm 2, locally.
        let my_load = self.my_load();
        let threshold = self.l_ave * self.cfg.transfer.threshold_h;
        if my_load > threshold && !self.knowledge.is_empty() {
            let tasks: Vec<Task> = self
                .current
                .iter()
                .map(|t| Task::new(t.id, t.load))
                .collect();
            let mut rng = self
                .factory
                .rank_stream(b"atransfer", self.me.as_u32() as u64, epoch);
            let out = transfer_stage(
                self.me,
                &tasks,
                &mut self.knowledge,
                Load::new(self.l_ave),
                &self.cfg.transfer,
                &mut rng,
            );
            self.iter_transfers = out.accepted;
            self.iter_rejected = out.rejected;

            // Remove proposed tasks locally and inform each recipient of
            // its new logical tasks (lazy transfer — no data movement).
            let mut by_target: HashMap<RankId, Vec<TaskEntry>> = HashMap::new();
            for m in &out.proposals {
                let idx = self
                    .current
                    .iter()
                    .position(|t| t.id == m.task)
                    .expect("proposed task is resident");
                let entry = self.current.swap_remove(idx);
                by_target.entry(m.to).or_default().push(entry);
            }
            // Deterministic send order regardless of hash state.
            let mut targets: Vec<(RankId, Vec<TaskEntry>)> = by_target.into_iter().collect();
            targets.sort_by_key(|(r, _)| *r);
            for (to, tasks) in targets {
                self.send_basic(ctx, to, LbMsg::Propose { epoch, tasks });
            }
        }

        let kick = self.det.kick();
        self.emit_td(ctx, kick);
        self.replay_buffered(ctx);
    }

    fn on_propose(&mut self, ctx: &mut Ctx<'_, LbMsg>, from: RankId, tasks: Vec<TaskEntry>) {
        self.det.on_basic_recv();
        if !self.cfg.use_nacks {
            self.current.extend(tasks);
            return;
        }
        // Menon-style NACKs: accept while staying under the average;
        // bounce the rest back to the proposer.
        let mut load = self.my_load();
        let mut rejected = Vec::new();
        for t in tasks {
            if load + t.load < self.l_ave {
                load += t.load;
                self.current.push(t);
            } else {
                rejected.push(t);
            }
        }
        if !rejected.is_empty() {
            let epoch = self.det.epoch();
            self.send_basic(ctx, from, LbMsg::ProposeReply { epoch, rejected });
        }
    }

    fn on_propose_reply(&mut self, rejected: Vec<TaskEntry>) {
        self.det.on_basic_recv();
        self.nacks_received += rejected.len();
        // Bounced tasks revert to this rank for the rest of the iteration.
        self.current.extend(rejected);
    }

    fn enter_evaluate(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        self.stage = Stage::Evaluate;
        let slot = self.eval_slot();
        let summary = LoadSummary::of(self.my_load());
        self.contribute(ctx, slot, summary);
        // Note: buffered messages for the next gossip epoch stay buffered;
        // they replay when the epoch starts.
    }

    fn advance_iteration(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        self.iter += 1;
        if self.iter >= self.cfg.iters {
            self.iter = 0;
            self.trial += 1;
            if self.trial >= self.cfg.trials {
                self.enter_commit(ctx);
                return;
            }
            // Algorithm 3 line 3: each trial restarts from the input
            // assignment.
            self.current = self.original.clone();
        }
        self.enter_gossip(ctx);
    }

    fn enter_commit(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        self.stage = Stage::Commit;
        let epoch = self.commit_epoch();
        self.det.start_epoch(epoch);
        // Adopt the best proposal; fetch data for tasks whose home is
        // elsewhere (lazy migration).
        self.current = self.best.clone();
        let mut by_home: HashMap<RankId, Vec<TaskId>> = HashMap::new();
        for t in &self.current {
            if t.home != self.me {
                by_home.entry(t.home).or_default().push(t.id);
            }
        }
        let mut homes: Vec<(RankId, Vec<TaskId>)> = by_home.into_iter().collect();
        homes.sort_by_key(|(r, _)| *r);
        for (home, tasks) in homes {
            self.migrations_in += tasks.len();
            self.send_basic(ctx, home, LbMsg::Fetch { epoch, tasks });
        }

        let kick = self.det.kick();
        self.emit_td(ctx, kick);
        self.replay_buffered(ctx);
    }

    fn on_fetch(&mut self, ctx: &mut Ctx<'_, LbMsg>, from: RankId, tasks: Vec<TaskId>) {
        self.det.on_basic_recv();
        self.migrations_out += tasks.len();
        let epoch = self.commit_epoch();
        let n = tasks.len();
        let extra = self.cfg.bytes_per_task * n;
        self.send_basic_sized(ctx, from, LbMsg::TaskData { epoch, tasks }, extra);
    }

    fn on_task_data(&mut self, _ctx: &mut Ctx<'_, LbMsg>, _tasks: Vec<TaskId>) {
        self.det.on_basic_recv();
    }

    // ---- buffering ---------------------------------------------------------

    fn should_buffer(&self, msg: &LbMsg) -> bool {
        match msg {
            LbMsg::Td(TdMsg::Token { epoch, .. }) | LbMsg::Td(TdMsg::Terminated { epoch }) => {
                *epoch > self.det.epoch()
            }
            other => match other.basic_epoch() {
                Some(e) => e > self.det.epoch(),
                None => false,
            },
        }
    }

    fn replay_buffered(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        // Messages for the (new) current epoch become deliverable; later
        // ones stay. Replay preserves arrival order.
        let mut deliverable = Vec::new();
        let mut keep = Vec::new();
        for (from, msg) in std::mem::take(&mut self.buffered) {
            if self.should_buffer(&msg) {
                keep.push((from, msg));
            } else {
                deliverable.push((from, msg));
            }
        }
        self.buffered = keep;
        for (from, msg) in deliverable {
            self.dispatch(ctx, from, msg);
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, LbMsg>, from: RankId, msg: LbMsg) {
        match msg {
            LbMsg::ReduceUp { slot, summary } => {
                if let Some(done) = self.slot_mut(slot).on_child(summary) {
                    self.reduce_complete(ctx, slot, done);
                }
            }
            LbMsg::ReduceDown { slot, summary } => {
                self.broadcast_down(ctx, slot, summary);
                self.on_reduce_result(ctx, slot, summary);
            }
            LbMsg::Gossip { epoch, round, pairs } => {
                debug_assert_eq!(epoch, self.det.epoch(), "buffering must align epochs");
                self.on_gossip(ctx, round, pairs);
            }
            LbMsg::Propose { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_propose(ctx, from, tasks);
            }
            LbMsg::ProposeReply { epoch, rejected } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_propose_reply(rejected);
            }
            LbMsg::Fetch { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_fetch(ctx, from, tasks);
            }
            LbMsg::TaskData { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_task_data(ctx, tasks);
            }
            LbMsg::Td(td) => {
                let out = self.det.handle(td);
                self.emit_td(ctx, out);
            }
        }
    }
}

fn pairs_of(k: &Knowledge) -> Vec<(RankId, f64)> {
    k.entries().map(|(r, l)| (r, l.get())).collect()
}

impl Protocol for LbRank {
    type Msg = LbMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        // Setup allreduce: contribute own load.
        let summary = LoadSummary::of(self.my_load());
        self.contribute(ctx, 0, summary);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, LbMsg>, from: RankId, msg: LbMsg) {
        if self.should_buffer(&msg) {
            self.buffered.push((from, msg));
            return;
        }
        self.dispatch(ctx, from, msg);
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_numbering_is_disjoint_and_ordered() {
        let cfg = LbProtocolConfig {
            trials: 3,
            iters: 4,
            ..Default::default()
        };
        let mut r = LbRank::new(RankId::new(0), 2, vec![], cfg, RngFactory::new(1));
        let mut seen = Vec::new();
        for trial in 0..3 {
            for iter in 0..4 {
                r.trial = trial;
                r.iter = iter;
                seen.push(r.gossip_epoch());
                seen.push(r.proposal_epoch());
            }
        }
        seen.push(r.commit_epoch());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "epochs must be unique");
        assert_eq!(*seen.first().unwrap(), 1, "epoch 0 is reserved for setup");
        assert!(seen.windows(2).all(|w| w[0] < w[1] || w[1] == r.commit_epoch()));
    }

    #[test]
    fn eval_slots_are_unique_per_iteration() {
        let cfg = LbProtocolConfig {
            trials: 2,
            iters: 3,
            ..Default::default()
        };
        let mut r = LbRank::new(RankId::new(0), 2, vec![], cfg, RngFactory::new(1));
        let mut slots = Vec::new();
        for trial in 0..2 {
            for iter in 0..3 {
                r.trial = trial;
                r.iter = iter;
                slots.push(r.eval_slot());
            }
        }
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(!slots.contains(&0), "slot 0 is the setup allreduce");
    }
}
