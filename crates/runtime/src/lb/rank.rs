//! Per-rank state machine of the asynchronous TemperedLB protocol.
//!
//! The protocol mirrors the paper's vt implementation structure:
//!
//! ```text
//! Setup      allreduce (Σ load, max load) → every rank knows ℓ_ave, ℓ_max
//! ┌─ per (trial, iteration) ──────────────────────────────────────────┐
//! │ Gossip     Algorithm 1, barrier-free; each message round is its    │
//! │            own TD epoch (round r of iteration j lives in epoch     │
//! │            1 + j·(k+1) + (r−1)), so a round's sends are a pure     │
//! │            function of the previous round's *complete* receipts    │
//! │ Proposals  Algorithm 2 locally; lazy-transfer messages inform      │
//! │            recipients of their new logical tasks (epoch … + k)     │
//! │ Evaluate   allreduce of proposed max load → identical I_proposed   │
//! │            at every rank → symmetric best-tracking, no coordinator │
//! └────────────────────────────────────────────────────────────────────┘
//! Commit     revert to best proposal; final owners fetch task data
//!            from home ranks (lazy migration); last TD epoch
//! Done
//! ```
//!
//! Every rank advances through stages *locally*, driven only by received
//! messages; out-of-order messages from ranks that advanced earlier are
//! buffered by epoch and replayed (see [`super::messages::LbMsg`]).
//!
//! # Determinism
//!
//! Stepping gossip by TD epoch (instead of forwarding reactively on
//! receipt) plus canonicalizing order-sensitive state — knowledge sorted
//! by rank at every epoch start, the resident task vector sorted by task
//! id at every stage boundary — makes the final assignment a pure
//! function of `(input, config, seed)`, independent of message timing,
//! interleaving, or executor. This is what lets the chaos harness assert
//! that a faulted run converges to the *same* assignment as a fault-free
//! one. (The NACK variant is excluded: which proposals a recipient
//! bounces depends inherently on arrival order.)
//!
//! # Hardening
//!
//! With [`LbProtocolConfig::reliability`] set, every protocol message —
//! gossip, proposals, migrations, collectives, *and* termination tokens —
//! travels through a [`ReliableChannel`]: sequence-numbered
//! [`LbWire::Data`] frames, acked on arrival, retransmitted with
//! exponential backoff, deduplicated at the receiver. Epoch buffering
//! sits *behind* the dedup layer, so a retransmitted duplicate can never
//! be double-processed even across epoch transitions. A rank whose
//! retry budget runs out or whose stage makes no progress for a full
//! [`RetryConfig::stage_deadline`] *degrades*: it abandons the protocol,
//! reverts to its input tasks (unless already committing, where the
//! globally-agreed best is kept), and goes silent so that peers degrade
//! via their own deadlines instead of acting on its partial state.
//! With `reliability` unset every message travels as [`LbWire::Raw`]
//! with zero overhead — the historical best-effort protocol.

use super::messages::{LbMsg, LbWire, TaskEntry, SEQ_OVERHEAD_BYTES};
use crate::collective::{LoadSummary, ReduceSlot, Tree};
use crate::reliable::{ReliableChannel, ReliableStats, RetryAction, RetryConfig};
use crate::sim::{Ctx, Protocol};
use crate::termination::{TdMsg, TerminationDetector};
use std::collections::HashMap;
use tempered_core::gossip::sample_target;
use tempered_core::ids::{RankId, TaskId};
use tempered_core::knowledge::Knowledge;
use tempered_core::load::Load;
use tempered_core::rng::RngFactory;
use tempered_core::task::Task;
use tempered_core::transfer::{transfer_stage, TransferConfig};
use tempered_obs::{EventKind, Recorder};

/// Configuration of the asynchronous protocol.
#[derive(Clone, Copy, Debug)]
pub struct LbProtocolConfig {
    /// Independent trials (`n_trials`).
    pub trials: usize,
    /// Iterations per trial (`n_iters`).
    pub iters: usize,
    /// Gossip fanout `f`.
    pub fanout: usize,
    /// Gossip round limit `k`.
    pub rounds: usize,
    /// Transfer-stage knobs (criterion, CMF, ordering, threshold).
    pub transfer: TransferConfig,
    /// Modeled payload bytes per migrated task (commit-stage data volume).
    pub bytes_per_task: usize,
    /// Enable Menon et al.'s negative acknowledgements: recipients bounce
    /// proposed tasks that would push them past `ℓ_ave`. The paper drops
    /// this mechanism (§V-A); the flag exists to measure that choice.
    pub use_nacks: bool,
    /// Delivery hardening. `None` (default) sends best-effort
    /// [`LbWire::Raw`] frames — the historical protocol, bit-identical
    /// to builds without the fault layer. `Some` enables at-least-once
    /// delivery with retransmission, dedup, and stage deadlines.
    pub reliability: Option<RetryConfig>,
}

impl Default for LbProtocolConfig {
    fn default() -> Self {
        LbProtocolConfig {
            trials: 10,
            iters: 8,
            fanout: 6,
            rounds: 10,
            transfer: TransferConfig::tempered(),
            bytes_per_task: 65_536,
            use_nacks: false,
            reliability: None,
        }
    }
}

impl LbProtocolConfig {
    /// A GrapevineLB-equivalent configuration: single trial, single
    /// iteration, original criterion and CMF, arbitrary ordering.
    pub fn grapevine() -> Self {
        LbProtocolConfig {
            trials: 1,
            iters: 1,
            transfer: TransferConfig::grapevine(),
            ..Default::default()
        }
    }

    /// The same configuration with delivery hardening enabled under the
    /// given retry policy.
    pub fn hardened(self, retry: RetryConfig) -> Self {
        LbProtocolConfig {
            reliability: Some(retry),
            ..self
        }
    }
}

/// Protocol stage (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Waiting for the initial allreduce.
    Setup,
    /// Gossip epoch in progress.
    Gossip,
    /// Proposal epoch in progress.
    Proposals,
    /// Waiting for the evaluation allreduce.
    Evaluate,
    /// Commit epoch (lazy migration) in progress.
    Commit,
    /// Finished.
    Done,
}

/// One `(trial, iteration, imbalance)` record, mirroring
/// `tempered_core::refine::IterationRecord` for the async path.
#[derive(Clone, Copy, Debug)]
pub struct AsyncIterationRecord {
    /// Trial index (0-based).
    pub trial: usize,
    /// Iteration index (1-based).
    pub iteration: usize,
    /// Globally agreed imbalance after this iteration's proposals.
    pub imbalance: f64,
    /// Transfers this rank accepted in the iteration.
    pub local_transfers: usize,
    /// Candidates this rank rejected in the iteration.
    pub local_rejected: usize,
}

/// The per-rank protocol actor.
#[derive(Debug)]
pub struct LbRank {
    me: RankId,
    num_ranks: usize,
    cfg: LbProtocolConfig,
    factory: RngFactory,
    tree: Tree,
    det: TerminationDetector,

    // Task state.
    original: Vec<TaskEntry>,
    current: Vec<TaskEntry>,
    best: Vec<TaskEntry>,

    // Collective state.
    slots: HashMap<u32, ReduceSlot>,

    // Globals agreed in Setup.
    l_ave: f64,
    /// Initial imbalance (valid after Setup).
    pub initial_imbalance: f64,
    /// Best imbalance seen (valid after the run).
    pub best_imbalance: f64,

    // Iteration cursor.
    trial: usize,
    iter: usize, // 0-based internally
    stage: Stage,

    // Gossip state for the current iteration.
    knowledge: Knowledge,
    gossip_round: u32,
    /// Whether any message in the current gossip round taught us a new
    /// underloaded rank (Algorithm 1's forwarding condition, evaluated
    /// per round instead of per message).
    grew: bool,

    // Delivery hardening.
    channel: ReliableChannel<LbMsg>,
    stage_seq: u64,
    /// Whether this rank abandoned the protocol (retry budget exhausted
    /// or stage deadline missed) and reverted to a safe assignment.
    pub degraded: bool,

    // Epoch-stamped buffering of early messages.
    buffered: Vec<(RankId, LbMsg)>,

    // Statistics.
    /// Per-iteration records (symmetrically identical across ranks except
    /// for the local transfer counters).
    pub records: Vec<AsyncIterationRecord>,
    /// Tasks this rank fetched at commit (real migrations in).
    pub migrations_in: usize,
    /// Tasks fetched *from* this rank at commit (real migrations out).
    pub migrations_out: usize,
    /// Proposed tasks bounced back by NACKs across the whole run
    /// (always 0 unless [`LbProtocolConfig::use_nacks`]).
    pub nacks_received: usize,
    iter_transfers: usize,
    iter_rejected: usize,

    // Observability.
    rec: Recorder,
    /// Currently open stage/round span: `(start ts, kind)`. Closed (and
    /// emitted) by the next stage transition or at protocol end.
    open_span: Option<(f64, EventKind)>,

    done: bool,
}

/// Static span label for a stage.
fn stage_label(stage: Stage) -> &'static str {
    match stage {
        Stage::Setup => "setup",
        Stage::Gossip => "gossip",
        Stage::Proposals => "proposals",
        Stage::Evaluate => "evaluate",
        Stage::Commit => "commit",
        Stage::Done => "done",
    }
}

impl LbRank {
    /// Create the actor for `me` with its resident tasks.
    pub fn new(
        me: RankId,
        num_ranks: usize,
        tasks: Vec<(TaskId, f64)>,
        cfg: LbProtocolConfig,
        factory: RngFactory,
    ) -> Self {
        assert!(cfg.rounds >= 1, "gossip needs at least one round");
        let original: Vec<TaskEntry> = tasks
            .into_iter()
            .map(|(id, load)| TaskEntry { id, load, home: me })
            .collect();
        LbRank {
            me,
            num_ranks,
            factory,
            tree: Tree::new(num_ranks, RankId::new(0)),
            det: TerminationDetector::new(me, num_ranks),
            current: original.clone(),
            best: original.clone(),
            original,
            slots: HashMap::new(),
            l_ave: 0.0,
            initial_imbalance: 0.0,
            best_imbalance: f64::INFINITY,
            trial: 0,
            iter: 0,
            stage: Stage::Setup,
            knowledge: Knowledge::new(),
            gossip_round: 0,
            grew: false,
            channel: ReliableChannel::new(cfg.reliability.unwrap_or_default()),
            stage_seq: 0,
            degraded: false,
            cfg,
            buffered: Vec::new(),
            records: Vec::new(),
            migrations_in: 0,
            migrations_out: 0,
            nacks_received: 0,
            iter_transfers: 0,
            iter_rejected: 0,
            rec: Recorder::disabled(),
            open_span: None,
            done: false,
        }
    }

    /// Attach an observability recorder (disabled by default). Stage and
    /// gossip-round spans, retransmission/dedup/give-up instants, and
    /// end-of-run counters are recorded against it. Recording never
    /// consults the protocol's random streams, so it cannot perturb the
    /// run.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Close the open span (if any) at `now` and open a new one.
    fn span_open(&mut self, now: f64, kind: EventKind) {
        if !self.rec.is_enabled() {
            return;
        }
        self.span_close(now);
        self.open_span = Some((now, kind));
    }

    /// Close the open span (if any) at `now`.
    fn span_close(&mut self, now: f64) {
        if let Some((t0, kind)) = self.open_span.take() {
            self.rec.span(self.me.as_u32(), t0, now - t0, kind);
        }
    }

    /// Flush end-of-run counters into the shared metrics registry. Called
    /// once per rank, on normal completion or degradation.
    fn flush_metrics(&self) {
        self.rec.with_metrics(|m| {
            let s = self.channel.stats;
            m.counter_add("lb.reliable.sent", s.sent);
            m.counter_add("lb.reliable.retransmitted", s.retransmitted);
            m.counter_add("lb.reliable.acked", s.acked);
            m.counter_add("lb.reliable.duplicates_suppressed", s.duplicates_suppressed);
            m.counter_add("lb.reliable.gave_up", s.gave_up);
            m.counter_add("lb.migrations_in", self.migrations_in as u64);
            m.counter_add("lb.migrations_out", self.migrations_out as u64);
            m.counter_add("lb.nacks_received", self.nacks_received as u64);
            m.counter_add("lb.degraded_ranks", self.degraded as u64);
            m.gauge_max("lb.initial_imbalance", self.initial_imbalance);
            if self.best_imbalance.is_finite() {
                m.gauge_max("lb.best_imbalance", self.best_imbalance);
            }
        });
    }

    /// This rank's final task set `(id, load, home)` after the protocol.
    pub fn final_tasks(&self) -> &[TaskEntry] {
        &self.current
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Delivery-layer counters (all zero in best-effort mode).
    pub fn reliable_stats(&self) -> ReliableStats {
        self.channel.stats
    }

    fn my_load(&self) -> f64 {
        self.current.iter().map(|t| t.load).sum()
    }

    // ---- epoch numbering -------------------------------------------------
    //
    // Epoch 0 is reserved for setup. Each (trial, iteration) owns a
    // contiguous block of `rounds + 1` epochs: one per gossip round plus
    // one for the proposal exchange. Commit takes the single epoch after
    // the last block. Early-exited gossip rounds leave their epoch
    // numbers unused — TD epochs need not be consecutive, only unique
    // and globally ordered.

    fn epoch_stride(&self) -> u64 {
        self.cfg.rounds as u64 + 1
    }

    fn iter_base(&self) -> u64 {
        (self.trial * self.cfg.iters + self.iter) as u64 * self.epoch_stride()
    }

    fn gossip_round_epoch(&self, round: u32) -> u64 {
        1 + self.iter_base() + (round as u64 - 1)
    }

    fn proposal_epoch(&self) -> u64 {
        1 + self.iter_base() + self.cfg.rounds as u64
    }

    fn commit_epoch(&self) -> u64 {
        1 + (self.cfg.trials * self.cfg.iters) as u64 * self.epoch_stride()
    }

    fn eval_slot(&self) -> u32 {
        1 + (self.trial * self.cfg.iters + self.iter) as u32
    }

    // ---- canonicalization ------------------------------------------------

    /// Sort knowledge by rank id. Gossip merges append in arrival order;
    /// sorting at every epoch boundary makes CMF construction and target
    /// sampling independent of message timing.
    fn canonicalize_knowledge(&mut self) {
        let mut entries = self.knowledge.to_pairs();
        entries.sort_by_key(|&(r, _)| r);
        self.knowledge = entries.into_iter().collect();
    }

    /// Sort resident tasks by id. Proposals extend `current` in arrival
    /// order; sorting at stage boundaries makes load sums (FP!) and
    /// transfer-stage iteration order timing-independent.
    fn canonicalize_current(&mut self) {
        self.current.sort_by_key(|t| t.id);
    }

    // ---- send helpers ----------------------------------------------------

    /// Full modeled cost of a protocol message, including commit-stage
    /// task payloads.
    fn payload_bytes(&self, msg: &LbMsg) -> usize {
        let extra = match msg {
            LbMsg::TaskData { tasks, .. } => self.cfg.bytes_per_task * tasks.len(),
            _ => 0,
        };
        msg.wire_bytes() + extra
    }

    /// Hand a protocol message to the delivery layer: raw in best-effort
    /// mode, sequenced + retry-timed in hardened mode.
    fn transmit(&mut self, ctx: &mut Ctx<'_, LbWire>, to: RankId, msg: LbMsg) {
        let bytes = self.payload_bytes(&msg);
        if self.cfg.reliability.is_some() {
            let (seq, delay) = self.channel.send(to, msg.clone());
            ctx.send(to, LbWire::Data { seq, msg }, bytes + SEQ_OVERHEAD_BYTES);
            ctx.schedule(delay, LbWire::RetryTimer { to, seq });
        } else {
            ctx.send(to, LbWire::Raw(msg), bytes);
        }
    }

    fn send_basic(&mut self, ctx: &mut Ctx<'_, LbWire>, to: RankId, msg: LbMsg) {
        debug_assert!(msg.basic_epoch().is_some(), "basic send of control msg");
        // Counted once here; retransmissions of the same sequence number
        // are invisible to termination detection.
        self.det.on_basic_send();
        self.transmit(ctx, to, msg);
    }

    fn send_ctrl(&mut self, ctx: &mut Ctx<'_, LbWire>, to: RankId, msg: LbMsg) {
        self.transmit(ctx, to, msg);
    }

    fn emit_td(&mut self, ctx: &mut Ctx<'_, LbWire>, outcome: crate::termination::TdOutcome) {
        for s in outcome.sends {
            self.send_ctrl(ctx, s.to, LbMsg::Td(s.msg));
        }
        if let Some(epoch) = outcome.terminated_epoch {
            self.on_epoch_terminated(ctx, epoch, outcome.terminated_sent);
        }
    }

    // ---- delivery hardening ----------------------------------------------

    fn arm_stage_deadline(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        if let Some(retry) = self.cfg.reliability {
            self.stage_seq += 1;
            ctx.schedule(
                retry.stage_deadline,
                LbWire::StageTimer {
                    stage_seq: self.stage_seq,
                },
            );
        }
    }

    fn on_stage_timer(&mut self, now: f64, stage_seq: u64) {
        // A stale counter means the stage advanced since this timer was
        // armed; only a live counter indicates a stall.
        if !self.done && stage_seq == self.stage_seq {
            self.degrade(now);
        }
    }

    fn on_retry_timer(&mut self, ctx: &mut Ctx<'_, LbWire>, to: RankId, seq: u64) {
        match self.channel.on_retry_timer(to, seq) {
            RetryAction::Resend {
                to,
                seq,
                msg,
                next_delay,
            } => {
                self.rec.instant(
                    self.me.as_u32(),
                    ctx.now(),
                    EventKind::Retransmit {
                        to: to.as_u32(),
                        seq,
                    },
                );
                let bytes = self.payload_bytes(&msg) + SEQ_OVERHEAD_BYTES;
                ctx.send(to, LbWire::Data { seq, msg }, bytes);
                ctx.schedule(next_delay, LbWire::RetryTimer { to, seq });
            }
            RetryAction::GaveUp { to, .. } => {
                self.rec.instant(
                    self.me.as_u32(),
                    ctx.now(),
                    EventKind::GaveUp { to: to.as_u32() },
                );
                self.degrade(ctx.now());
            }
            RetryAction::Settled => {}
        }
    }

    /// Abandon the protocol after a delivery failure. Before commit the
    /// rank reverts to its input tasks — the only assignment it can
    /// adopt without coordination. At commit the globally-agreed best is
    /// kept: the logical assignment was already fixed by the evaluation
    /// allreduce, and reverting unilaterally would desynchronize it.
    /// The rank then goes silent (no acks, no forwards), so peers that
    /// depend on it degrade through their own deadlines rather than
    /// acting on its abandoned state.
    fn degrade(&mut self, now: f64) {
        if self.done {
            return;
        }
        self.rec.instant(
            self.me.as_u32(),
            now,
            EventKind::Degraded {
                stage: stage_label(self.stage),
            },
        );
        self.degraded = true;
        self.done = true;
        if !matches!(self.stage, Stage::Commit | Stage::Done) {
            self.current = self.original.clone();
        }
        self.stage = Stage::Done;
        self.span_close(now);
        self.flush_metrics();
    }

    // ---- collectives -----------------------------------------------------

    fn slot_mut(&mut self, slot: u32) -> &mut ReduceSlot {
        let children = self.tree.children(self.me).len();
        self.slots
            .entry(slot)
            .or_insert_with(|| ReduceSlot::new(children))
    }

    fn contribute(&mut self, ctx: &mut Ctx<'_, LbWire>, slot: u32, value: LoadSummary) {
        if let Some(done) = self.slot_mut(slot).contribute(value) {
            self.reduce_complete(ctx, slot, done);
        }
    }

    fn reduce_complete(&mut self, ctx: &mut Ctx<'_, LbWire>, slot: u32, summary: LoadSummary) {
        match self.tree.parent(self.me) {
            Some(parent) => {
                self.send_ctrl(ctx, parent, LbMsg::ReduceUp { slot, summary });
            }
            None => {
                // Root: broadcast the result and consume it locally.
                self.broadcast_down(ctx, slot, summary);
                self.on_reduce_result(ctx, slot, summary);
            }
        }
    }

    fn broadcast_down(&mut self, ctx: &mut Ctx<'_, LbWire>, slot: u32, summary: LoadSummary) {
        for child in self.tree.children(self.me) {
            self.send_ctrl(ctx, child, LbMsg::ReduceDown { slot, summary });
        }
    }

    fn on_reduce_result(&mut self, ctx: &mut Ctx<'_, LbWire>, slot: u32, summary: LoadSummary) {
        if slot == 0 {
            // Setup complete: everyone now knows ℓ_ave / ℓ_max.
            debug_assert_eq!(self.stage, Stage::Setup);
            self.l_ave = summary.average();
            self.initial_imbalance = summary.imbalance();
            self.best_imbalance = summary.imbalance();
            self.enter_gossip(ctx);
        } else {
            debug_assert_eq!(self.stage, Stage::Evaluate);
            debug_assert_eq!(slot, self.eval_slot());
            let imbalance = summary.imbalance();
            self.records.push(AsyncIterationRecord {
                trial: self.trial,
                iteration: self.iter + 1,
                imbalance,
                local_transfers: self.iter_transfers,
                local_rejected: self.iter_rejected,
            });
            if imbalance < self.best_imbalance {
                self.best_imbalance = imbalance;
                self.best = self.current.clone();
            }
            self.advance_iteration(ctx);
        }
    }

    // ---- stage transitions -------------------------------------------------

    fn enter_gossip(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        self.iter_transfers = 0;
        self.iter_rejected = 0;
        self.knowledge = Knowledge::new();
        self.canonicalize_current();
        self.enter_gossip_round(ctx, 1);
    }

    fn enter_gossip_round(&mut self, ctx: &mut Ctx<'_, LbWire>, round: u32) {
        self.stage = Stage::Gossip;
        self.gossip_round = round;
        self.span_open(
            ctx.now(),
            EventKind::GossipRound {
                trial: self.trial as u32,
                iter: self.iter as u32,
                round,
            },
        );
        let epoch = self.gossip_round_epoch(round);
        self.det.start_epoch(epoch);

        // Algorithm 1, stepped: round 1 is seeded by the underloaded
        // ranks (lines 6–12); round r+1 is sent by exactly the ranks
        // whose knowledge grew during round r (lines 18–24). All sends
        // happen at round entry, over the complete, canonicalized union
        // of the previous round's receipts.
        let sending = if round == 1 {
            let my_load = self.my_load();
            if my_load < self.l_ave {
                self.knowledge.insert(self.me, Load::new(my_load));
                true
            } else {
                false
            }
        } else {
            self.grew
        };
        self.grew = false;
        self.canonicalize_knowledge();

        if sending {
            let pairs = pairs_of(&self.knowledge);
            let mut rng = self
                .factory
                .rank_stream(b"agossip", self.me.as_u32() as u64, epoch);
            for _ in 0..self.cfg.fanout {
                if let Some(target) =
                    sample_target(&mut rng, self.num_ranks, self.me, &self.knowledge)
                {
                    self.send_basic(
                        ctx,
                        target,
                        LbMsg::Gossip {
                            epoch,
                            round,
                            pairs: pairs.clone(),
                        },
                    );
                }
            }
        }

        self.arm_stage_deadline(ctx);
        // Coordinator launches termination detection for this epoch.
        let kick = self.det.kick();
        self.emit_td(ctx, kick);
        self.replay_buffered(ctx);
    }

    fn on_gossip(&mut self, round: u32, pairs: Vec<(RankId, f64)>) {
        self.det.on_basic_recv();
        debug_assert_eq!(round, self.gossip_round);
        let typed: Vec<(RankId, Load)> = pairs.iter().map(|&(r, l)| (r, Load::new(l))).collect();
        if self.knowledge.merge_pairs(&typed) > 0 {
            self.grew = true;
        }
    }

    fn on_epoch_terminated(&mut self, ctx: &mut Ctx<'_, LbWire>, epoch: u64, sent: u64) {
        self.rec.instant(
            self.me.as_u32(),
            ctx.now(),
            EventKind::EpochTerminated { epoch, sent },
        );
        match self.stage {
            Stage::Gossip => {
                debug_assert_eq!(epoch, self.gossip_round_epoch(self.gossip_round));
                // `sent` is carried by the termination broadcast, so all
                // ranks agree on it: if the round moved no messages the
                // remaining rounds are provably empty and every rank
                // skips them in lockstep.
                if sent == 0 || self.gossip_round as usize >= self.cfg.rounds {
                    self.run_transfer(ctx);
                } else {
                    self.enter_gossip_round(ctx, self.gossip_round + 1);
                }
            }
            Stage::Proposals => {
                debug_assert_eq!(epoch, self.proposal_epoch());
                self.enter_evaluate(ctx);
            }
            Stage::Commit => {
                debug_assert_eq!(epoch, self.commit_epoch());
                self.stage = Stage::Done;
                self.done = true;
                self.span_close(ctx.now());
                self.flush_metrics();
            }
            s => panic!("unexpected epoch {epoch} termination in stage {s:?}"),
        }
    }

    fn run_transfer(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        self.stage = Stage::Proposals;
        self.span_open(
            ctx.now(),
            EventKind::LbStage {
                stage: "proposals",
                trial: self.trial as u32,
                iter: self.iter as u32,
            },
        );
        let epoch = self.proposal_epoch();
        self.det.start_epoch(epoch);
        self.canonicalize_current();
        self.canonicalize_knowledge();

        // Algorithm 2, locally.
        let my_load = self.my_load();
        let threshold = self.l_ave * self.cfg.transfer.threshold_h;
        if my_load > threshold && !self.knowledge.is_empty() {
            let tasks: Vec<Task> = self
                .current
                .iter()
                .map(|t| Task::new(t.id, t.load))
                .collect();
            let mut rng = self
                .factory
                .rank_stream(b"atransfer", self.me.as_u32() as u64, epoch);
            let out = transfer_stage(
                self.me,
                &tasks,
                &mut self.knowledge,
                Load::new(self.l_ave),
                &self.cfg.transfer,
                &mut rng,
            );
            self.iter_transfers = out.accepted;
            self.iter_rejected = out.rejected;

            // Remove proposed tasks locally and inform each recipient of
            // its new logical tasks (lazy transfer — no data movement).
            let mut by_target: HashMap<RankId, Vec<TaskEntry>> = HashMap::new();
            for m in &out.proposals {
                let idx = self
                    .current
                    .iter()
                    .position(|t| t.id == m.task)
                    .expect("proposed task is resident");
                let entry = self.current.swap_remove(idx);
                by_target.entry(m.to).or_default().push(entry);
            }
            // Deterministic send order regardless of hash state.
            let mut targets: Vec<(RankId, Vec<TaskEntry>)> = by_target.into_iter().collect();
            targets.sort_by_key(|(r, _)| *r);
            for (to, tasks) in targets {
                self.send_basic(ctx, to, LbMsg::Propose { epoch, tasks });
            }
        }

        self.arm_stage_deadline(ctx);
        let kick = self.det.kick();
        self.emit_td(ctx, kick);
        self.replay_buffered(ctx);
    }

    fn on_propose(&mut self, ctx: &mut Ctx<'_, LbWire>, from: RankId, tasks: Vec<TaskEntry>) {
        self.det.on_basic_recv();
        if !self.cfg.use_nacks {
            self.current.extend(tasks);
            return;
        }
        // Menon-style NACKs: accept while staying under the average;
        // bounce the rest back to the proposer.
        let mut load = self.my_load();
        let mut rejected = Vec::new();
        for t in tasks {
            if load + t.load < self.l_ave {
                load += t.load;
                self.current.push(t);
            } else {
                rejected.push(t);
            }
        }
        if !rejected.is_empty() {
            let epoch = self.det.epoch();
            self.send_basic(ctx, from, LbMsg::ProposeReply { epoch, rejected });
        }
    }

    fn on_propose_reply(&mut self, rejected: Vec<TaskEntry>) {
        self.det.on_basic_recv();
        self.nacks_received += rejected.len();
        // Bounced tasks revert to this rank for the rest of the iteration.
        self.current.extend(rejected);
    }

    fn enter_evaluate(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        self.stage = Stage::Evaluate;
        self.span_open(
            ctx.now(),
            EventKind::LbStage {
                stage: "evaluate",
                trial: self.trial as u32,
                iter: self.iter as u32,
            },
        );
        self.canonicalize_current();
        self.arm_stage_deadline(ctx);
        let slot = self.eval_slot();
        let summary = LoadSummary::of(self.my_load());
        self.contribute(ctx, slot, summary);
        // Note: buffered messages for the next gossip epoch stay buffered;
        // they replay when the epoch starts.
    }

    fn advance_iteration(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        self.iter += 1;
        if self.iter >= self.cfg.iters {
            self.iter = 0;
            self.trial += 1;
            if self.trial >= self.cfg.trials {
                self.enter_commit(ctx);
                return;
            }
            // Algorithm 3 line 3: each trial restarts from the input
            // assignment.
            self.current = self.original.clone();
        }
        self.enter_gossip(ctx);
    }

    fn enter_commit(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        self.stage = Stage::Commit;
        self.span_open(
            ctx.now(),
            EventKind::LbStage {
                stage: "commit",
                trial: self.trial as u32,
                iter: self.iter as u32,
            },
        );
        let epoch = self.commit_epoch();
        self.det.start_epoch(epoch);
        // Adopt the best proposal; fetch data for tasks whose home is
        // elsewhere (lazy migration).
        self.current = self.best.clone();
        self.canonicalize_current();
        let mut by_home: HashMap<RankId, Vec<TaskId>> = HashMap::new();
        for t in &self.current {
            if t.home != self.me {
                by_home.entry(t.home).or_default().push(t.id);
            }
        }
        let mut homes: Vec<(RankId, Vec<TaskId>)> = by_home.into_iter().collect();
        homes.sort_by_key(|(r, _)| *r);
        for (home, tasks) in homes {
            self.migrations_in += tasks.len();
            self.send_basic(ctx, home, LbMsg::Fetch { epoch, tasks });
        }

        self.arm_stage_deadline(ctx);
        let kick = self.det.kick();
        self.emit_td(ctx, kick);
        self.replay_buffered(ctx);
    }

    fn on_fetch(&mut self, ctx: &mut Ctx<'_, LbWire>, from: RankId, tasks: Vec<TaskId>) {
        self.det.on_basic_recv();
        self.migrations_out += tasks.len();
        let epoch = self.commit_epoch();
        self.send_basic(ctx, from, LbMsg::TaskData { epoch, tasks });
    }

    fn on_task_data(&mut self, _tasks: Vec<TaskId>) {
        self.det.on_basic_recv();
    }

    // ---- buffering ---------------------------------------------------------

    fn should_buffer(&self, msg: &LbMsg) -> bool {
        match msg {
            LbMsg::Td(TdMsg::Token { epoch, .. }) | LbMsg::Td(TdMsg::Terminated { epoch, .. }) => {
                *epoch > self.det.epoch()
            }
            other => match other.basic_epoch() {
                Some(e) => e > self.det.epoch(),
                None => false,
            },
        }
    }

    fn replay_buffered(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        // Messages for the (new) current epoch become deliverable; later
        // ones stay. Replay preserves arrival order.
        let mut deliverable = Vec::new();
        let mut keep = Vec::new();
        for (from, msg) in std::mem::take(&mut self.buffered) {
            if self.should_buffer(&msg) {
                keep.push((from, msg));
            } else {
                deliverable.push((from, msg));
            }
        }
        self.buffered = keep;
        for (from, msg) in deliverable {
            self.dispatch(ctx, from, msg);
        }
    }

    /// Deliver a protocol message that passed the transport layer
    /// (dedup already done); buffer it if it belongs to a future epoch.
    fn receive_inner(&mut self, ctx: &mut Ctx<'_, LbWire>, from: RankId, msg: LbMsg) {
        if self.should_buffer(&msg) {
            self.buffered.push((from, msg));
            return;
        }
        self.dispatch(ctx, from, msg);
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, LbWire>, from: RankId, msg: LbMsg) {
        match msg {
            LbMsg::ReduceUp { slot, summary } => {
                if let Some(done) = self.slot_mut(slot).on_child(from, summary) {
                    self.reduce_complete(ctx, slot, done);
                }
            }
            LbMsg::ReduceDown { slot, summary } => {
                self.broadcast_down(ctx, slot, summary);
                self.on_reduce_result(ctx, slot, summary);
            }
            LbMsg::Gossip {
                epoch,
                round,
                pairs,
            } => {
                debug_assert_eq!(epoch, self.det.epoch(), "buffering must align epochs");
                self.on_gossip(round, pairs);
            }
            LbMsg::Propose { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_propose(ctx, from, tasks);
            }
            LbMsg::ProposeReply { epoch, rejected } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_propose_reply(rejected);
            }
            LbMsg::Fetch { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_fetch(ctx, from, tasks);
            }
            LbMsg::TaskData { epoch, tasks } => {
                debug_assert_eq!(epoch, self.det.epoch());
                self.on_task_data(tasks);
            }
            LbMsg::Td(td) => {
                let out = self.det.handle(td);
                self.emit_td(ctx, out);
            }
        }
    }
}

fn pairs_of(k: &Knowledge) -> Vec<(RankId, f64)> {
    k.entries().map(|(r, l)| (r, l.get())).collect()
}

impl Protocol for LbRank {
    type Msg = LbWire;

    fn on_start(&mut self, ctx: &mut Ctx<'_, LbWire>) {
        self.span_open(
            ctx.now(),
            EventKind::LbStage {
                stage: "setup",
                trial: 0,
                iter: 0,
            },
        );
        self.arm_stage_deadline(ctx);
        // Setup allreduce: contribute own load.
        let summary = LoadSummary::of(self.my_load());
        self.contribute(ctx, 0, summary);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, LbWire>, from: RankId, wire: LbWire) {
        // A degraded rank is out of the protocol entirely: it neither
        // processes nor acknowledges, so peers waiting on it time out
        // instead of building on its abandoned state.
        if self.degraded {
            return;
        }
        match wire {
            LbWire::Raw(msg) => self.receive_inner(ctx, from, msg),
            LbWire::Data { seq, msg } => {
                // Ack every copy — a lost ack must be repaired by the
                // resend of the data — but process only the first.
                ctx.send(from, LbWire::Ack { seq }, SEQ_OVERHEAD_BYTES);
                if self.channel.accept(from, seq) {
                    self.receive_inner(ctx, from, msg);
                } else {
                    self.rec.instant(
                        self.me.as_u32(),
                        ctx.now(),
                        EventKind::DuplicateSuppressed {
                            from: from.as_u32(),
                            seq,
                        },
                    );
                }
            }
            LbWire::Ack { seq } => self.channel.on_ack(from, seq),
            LbWire::RetryTimer { to, seq } => self.on_retry_timer(ctx, to, seq),
            LbWire::StageTimer { stage_seq } => self.on_stage_timer(ctx.now(), stage_seq),
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_numbering_is_disjoint_and_ordered() {
        let cfg = LbProtocolConfig {
            trials: 3,
            iters: 4,
            rounds: 5,
            ..Default::default()
        };
        let mut r = LbRank::new(RankId::new(0), 2, vec![], cfg, RngFactory::new(1));
        let mut seen = Vec::new();
        for trial in 0..3 {
            for iter in 0..4 {
                r.trial = trial;
                r.iter = iter;
                for round in 1..=5u32 {
                    seen.push(r.gossip_round_epoch(round));
                }
                seen.push(r.proposal_epoch());
            }
        }
        seen.push(r.commit_epoch());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "epochs must be unique");
        assert_eq!(*seen.first().unwrap(), 1, "epoch 0 is reserved for setup");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "epochs must ascend");
        assert_eq!(*seen.last().unwrap(), r.commit_epoch());
    }

    #[test]
    fn eval_slots_are_unique_per_iteration() {
        let cfg = LbProtocolConfig {
            trials: 2,
            iters: 3,
            ..Default::default()
        };
        let mut r = LbRank::new(RankId::new(0), 2, vec![], cfg, RngFactory::new(1));
        let mut slots = Vec::new();
        for trial in 0..2 {
            for iter in 0..3 {
                r.trial = trial;
                r.iter = iter;
                slots.push(r.eval_slot());
            }
        }
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(!slots.contains(&0), "slot 0 is the setup allreduce");
    }

    #[test]
    fn degrade_before_commit_reverts_to_input() {
        let cfg = LbProtocolConfig::default();
        let tasks = vec![(TaskId::new(1), 1.0), (TaskId::new(2), 2.0)];
        let mut r = LbRank::new(RankId::new(0), 4, tasks, cfg, RngFactory::new(1));
        r.stage = Stage::Proposals;
        r.current.clear(); // pretend everything was proposed away
        r.degrade(0.0);
        assert!(r.degraded);
        assert!(r.is_done());
        assert_eq!(r.final_tasks().len(), 2);
        assert_eq!(r.stage(), Stage::Done);
    }

    #[test]
    fn degrade_at_commit_keeps_the_agreed_best() {
        let cfg = LbProtocolConfig::default();
        let tasks = vec![(TaskId::new(1), 1.0)];
        let mut r = LbRank::new(RankId::new(0), 4, tasks, cfg, RngFactory::new(1));
        r.stage = Stage::Commit;
        r.current = vec![TaskEntry {
            id: TaskId::new(9),
            load: 3.0,
            home: RankId::new(2),
        }];
        r.degrade(0.0);
        assert!(r.degraded);
        assert_eq!(r.final_tasks().len(), 1);
        assert_eq!(r.final_tasks()[0].id, TaskId::new(9));
    }
}
