//! Simulated one-sided RDMA handles: get, put, and accumulate.
//!
//! §III-A: vt achieves data flow either by active messages or "by
//! directly transferring data by targeting RDMA handles with get, put,
//! and accumulate operations". This module provides that second path for
//! protocols on the simulated runtime: a rank registers a byte window
//! under a [`RdmaHandle`]; remote ranks issue one-sided operations that
//! complete without involving the target's protocol logic — the executor
//! services them, exactly like NIC-driven RDMA bypasses the remote CPU.
//!
//! The implementation piggybacks on the active-message layer (each
//! operation is a request message served by the [`RdmaAgent`] embedded in
//! the target's protocol dispatch), which preserves both executors'
//! semantics: deterministic completion order under the event simulator,
//! arbitrary interleavings under threads. Payloads use [`bytes::Bytes`]
//! so windows and in-flight operations share buffers without copying.

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tempered_core::ids::RankId;

/// Identifier of a registered RDMA window, unique per owning rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RdmaHandle(pub u64);

/// One-sided operations, as carried by the embedding protocol's message
/// type.
#[derive(Clone, Debug)]
pub enum RdmaOp {
    /// Read `len` bytes at `offset`; the agent responds with
    /// [`RdmaReply::Data`].
    Get {
        /// Target window.
        handle: RdmaHandle,
        /// Byte offset into the window.
        offset: usize,
        /// Bytes to read.
        len: usize,
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
    },
    /// Write `data` at `offset`; the agent responds with
    /// [`RdmaReply::Done`].
    Put {
        /// Target window.
        handle: RdmaHandle,
        /// Byte offset into the window.
        offset: usize,
        /// Bytes to write.
        data: Bytes,
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
    },
    /// Element-wise `f64` accumulate (the PIC deposit primitive): adds
    /// `values` onto the window interpreted as little-endian `f64`s
    /// starting at element `elem_offset`.
    Accumulate {
        /// Target window.
        handle: RdmaHandle,
        /// Offset in `f64` elements.
        elem_offset: usize,
        /// Values to add.
        values: Vec<f64>,
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
    },
}

/// Completion notifications returned to the issuing rank.
#[derive(Clone, Debug, PartialEq)]
pub enum RdmaReply {
    /// Get completion.
    Data {
        /// Echoed request tag.
        tag: u64,
        /// The bytes read.
        data: Bytes,
    },
    /// Put/accumulate completion.
    Done {
        /// Echoed request tag.
        tag: u64,
    },
    /// The request referenced an unknown handle or out-of-range window
    /// slice.
    Error {
        /// Echoed request tag.
        tag: u64,
        /// Human-readable cause.
        reason: &'static str,
    },
}

/// Per-rank registry of RDMA windows, embedded in a protocol.
#[derive(Debug, Default)]
pub struct RdmaAgent {
    windows: HashMap<RdmaHandle, BytesMut>,
    next_handle: u64,
}

impl RdmaAgent {
    /// Empty agent.
    pub fn new() -> Self {
        RdmaAgent::default()
    }

    /// Register a window of `len` zero bytes; returns its handle.
    pub fn register(&mut self, len: usize) -> RdmaHandle {
        let h = RdmaHandle(self.next_handle);
        self.next_handle += 1;
        self.windows.insert(h, BytesMut::zeroed(len));
        h
    }

    /// Register a window initialized from `data`.
    pub fn register_with(&mut self, data: &[u8]) -> RdmaHandle {
        let h = self.register(data.len());
        self.windows.get_mut(&h).unwrap().copy_from_slice(data);
        h
    }

    /// Deregister a window; returns its final contents if it existed.
    pub fn deregister(&mut self, handle: RdmaHandle) -> Option<Bytes> {
        self.windows.remove(&handle).map(BytesMut::freeze)
    }

    /// Local view of a window.
    pub fn window(&self, handle: RdmaHandle) -> Option<&[u8]> {
        self.windows.get(&handle).map(|w| w.as_ref())
    }

    /// Local view of a window as `f64` elements (must be 8-byte sized).
    pub fn window_f64(&self, handle: RdmaHandle) -> Option<Vec<f64>> {
        let w = self.windows.get(&handle)?;
        if w.len() % 8 != 0 {
            return None;
        }
        Some(
            w.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }

    /// Service a one-sided operation against the local windows. The
    /// embedding protocol routes the returned reply back to `_from`
    /// through its own message type.
    pub fn serve(&mut self, _from: RankId, op: RdmaOp) -> RdmaReply {
        match op {
            RdmaOp::Get {
                handle,
                offset,
                len,
                tag,
            } => match self.windows.get(&handle) {
                None => RdmaReply::Error {
                    tag,
                    reason: "unknown handle",
                },
                Some(w) if offset + len > w.len() => RdmaReply::Error {
                    tag,
                    reason: "get out of range",
                },
                Some(w) => RdmaReply::Data {
                    tag,
                    data: Bytes::copy_from_slice(&w[offset..offset + len]),
                },
            },
            RdmaOp::Put {
                handle,
                offset,
                data,
                tag,
            } => match self.windows.get_mut(&handle) {
                None => RdmaReply::Error {
                    tag,
                    reason: "unknown handle",
                },
                Some(w) if offset + data.len() > w.len() => RdmaReply::Error {
                    tag,
                    reason: "put out of range",
                },
                Some(w) => {
                    w[offset..offset + data.len()].copy_from_slice(&data);
                    RdmaReply::Done { tag }
                }
            },
            RdmaOp::Accumulate {
                handle,
                elem_offset,
                values,
                tag,
            } => match self.windows.get_mut(&handle) {
                None => RdmaReply::Error {
                    tag,
                    reason: "unknown handle",
                },
                Some(w) => {
                    let start = elem_offset * 8;
                    let end = start + values.len() * 8;
                    if end > w.len() || w.len() % 8 != 0 {
                        return RdmaReply::Error {
                            tag,
                            reason: "accumulate out of range",
                        };
                    }
                    for (i, v) in values.iter().enumerate() {
                        let off = start + i * 8;
                        let cur = f64::from_le_bytes(w[off..off + 8].try_into().unwrap());
                        w[off..off + 8].copy_from_slice(&(cur + v).to_le_bytes());
                    }
                    RdmaReply::Done { tag }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent_with_window(len: usize) -> (RdmaAgent, RdmaHandle) {
        let mut a = RdmaAgent::new();
        let h = a.register(len);
        (a, h)
    }

    #[test]
    fn put_then_get_roundtrips() {
        let (mut a, h) = agent_with_window(16);
        let r = a.serve(
            RankId::new(1),
            RdmaOp::Put {
                handle: h,
                offset: 4,
                data: Bytes::from_static(b"abcd"),
                tag: 7,
            },
        );
        assert_eq!(r, RdmaReply::Done { tag: 7 });
        let r = a.serve(
            RankId::new(2),
            RdmaOp::Get {
                handle: h,
                offset: 4,
                len: 4,
                tag: 8,
            },
        );
        match r {
            RdmaReply::Data { tag, data } => {
                assert_eq!(tag, 8);
                assert_eq!(&data[..], b"abcd");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let (mut a, h) = agent_with_window(24); // 3 f64s
        for _ in 0..2 {
            let r = a.serve(
                RankId::new(1),
                RdmaOp::Accumulate {
                    handle: h,
                    elem_offset: 1,
                    values: vec![1.5, 2.0],
                    tag: 1,
                },
            );
            assert_eq!(r, RdmaReply::Done { tag: 1 });
        }
        assert_eq!(a.window_f64(h).unwrap(), vec![0.0, 3.0, 4.0]);
    }

    #[test]
    fn out_of_range_and_unknown_handle_error() {
        let (mut a, h) = agent_with_window(8);
        let r = a.serve(
            RankId::new(1),
            RdmaOp::Get {
                handle: h,
                offset: 4,
                len: 8,
                tag: 3,
            },
        );
        assert!(matches!(r, RdmaReply::Error { tag: 3, .. }));
        let r = a.serve(
            RankId::new(1),
            RdmaOp::Put {
                handle: RdmaHandle(99),
                offset: 0,
                data: Bytes::from_static(b"x"),
                tag: 4,
            },
        );
        assert!(matches!(r, RdmaReply::Error { tag: 4, .. }));
        let r = a.serve(
            RankId::new(1),
            RdmaOp::Accumulate {
                handle: h,
                elem_offset: 1,
                values: vec![1.0],
                tag: 5,
            },
        );
        assert!(matches!(r, RdmaReply::Error { tag: 5, .. }));
    }

    #[test]
    fn register_with_and_deregister() {
        let mut a = RdmaAgent::new();
        let h = a.register_with(b"hello");
        assert_eq!(a.window(h).unwrap(), b"hello");
        let final_bytes = a.deregister(h).unwrap();
        assert_eq!(&final_bytes[..], b"hello");
        assert!(a.window(h).is_none());
        assert!(a.deregister(h).is_none());
    }

    #[test]
    fn handles_are_unique_per_agent() {
        let mut a = RdmaAgent::new();
        let h1 = a.register(8);
        let h2 = a.register(8);
        assert_ne!(h1, h2);
    }

    /// Drive RDMA through the event simulator: rank 1 deposits into rank
    /// 0's field window with accumulate, then reads it back with get —
    /// the PIC current-deposit pattern from §III-A.
    #[test]
    fn rdma_over_the_simulator() {
        use crate::sim::{Ctx, NetworkModel, Protocol, Simulator};
        use tempered_core::rng::RngFactory;

        #[derive(Clone, Debug)]
        enum Msg {
            Op(RdmaOp),
            Reply(RdmaReply),
        }

        struct Node {
            me: usize,
            agent: RdmaAgent,
            handle: Option<RdmaHandle>,
            readback: Option<Vec<f64>>,
            done: bool,
        }

        impl Protocol for Node {
            type Msg = Msg;

            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                if self.me == 0 {
                    // Owner registers a 4-element field window.
                    self.handle = Some(self.agent.register(32));
                } else {
                    // Depositor: two accumulates then a get.
                    let h = RdmaHandle(0); // owner's first handle
                    ctx.send(
                        RankId::new(0),
                        Msg::Op(RdmaOp::Accumulate {
                            handle: h,
                            elem_offset: 0,
                            values: vec![1.0, 2.0, 3.0, 4.0],
                            tag: 1,
                        }),
                        48,
                    );
                    ctx.send(
                        RankId::new(0),
                        Msg::Op(RdmaOp::Accumulate {
                            handle: h,
                            elem_offset: 2,
                            values: vec![10.0],
                            tag: 2,
                        }),
                        16,
                    );
                }
            }

            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: RankId, msg: Msg) {
                match msg {
                    Msg::Op(op) => {
                        let reply = self.agent.serve(from, op);
                        ctx.send(from, Msg::Reply(reply), 16);
                        if self.me == 0 {
                            // Owner's protocol logic never inspected the
                            // payload: one-sided semantics.
                        }
                    }
                    Msg::Reply(RdmaReply::Done { tag: 2 }) => {
                        // Both deposits done (event order is FIFO per
                        // latency; tag 2 completes after tag 1 whp — read
                        // back regardless; accumulate is commutative).
                        ctx.send(
                            RankId::new(0),
                            Msg::Op(RdmaOp::Get {
                                handle: RdmaHandle(0),
                                offset: 0,
                                len: 32,
                                tag: 3,
                            }),
                            16,
                        );
                    }
                    Msg::Reply(RdmaReply::Data { tag: 3, data }) => {
                        self.readback = Some(
                            data.chunks_exact(8)
                                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                                .collect(),
                        );
                        self.done = true;
                    }
                    Msg::Reply(_) => {}
                }
            }

            fn is_done(&self) -> bool {
                self.me == 0 || self.done
            }
        }

        let nodes = vec![
            Node {
                me: 0,
                agent: RdmaAgent::new(),
                handle: None,
                readback: None,
                done: false,
            },
            Node {
                me: 1,
                agent: RdmaAgent::new(),
                handle: None,
                readback: None,
                done: false,
            },
        ];
        // Zero jitter keeps the two accumulates in issue order, making
        // the tag-2-completes-last assumption exact.
        let mut sim = Simulator::new(nodes, NetworkModel::instant(), &RngFactory::new(1));
        let report = sim.run();
        assert!(report.completed);
        let depositor = sim.rank(RankId::new(1));
        assert_eq!(
            depositor.readback.as_ref().unwrap(),
            &vec![1.0, 2.0, 13.0, 4.0]
        );
    }
}
