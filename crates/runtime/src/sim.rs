//! Deterministic discrete-event executor for rank protocols.
//!
//! This is the substrate standing in for the paper's DARMA/vt runtime over
//! MPI: a set of ranks exchanging *active messages*, each message
//! triggering a handler on the target rank. The executor delivers
//! messages in virtual-time order under a configurable latency model, so
//! an entire distributed protocol — gossip, collectives, termination
//! detection, migration — runs bit-reproducibly from a seed while
//! exercising exactly the code a real asynchronous runtime would.
//!
//! Design notes:
//!
//! * Events are ordered by `(virtual time, sequence number)`; the sequence
//!   number breaks ties deterministically, so runs are reproducible even
//!   when many messages share a timestamp.
//! * Handlers never touch other ranks directly: all effects flow through
//!   [`Ctx::send`]. This keeps protocol implementations portable to the
//!   multi-threaded executor in [`crate::parallel`], which provides the
//!   same trait with real concurrency.
//! * The executor exposes an [`Protocol::on_quiescence`] hook fired when
//!   the event queue drains. Protocol code may use it for test
//!   scaffolding, but the shipped LB protocol sequences itself with the
//!   distributed termination detector in [`crate::termination`] — the
//!   simulator hook exists to *validate* the detector against ground
//!   truth.

use crate::fault::{CrashSchedule, Fate, FaultInjector, FaultPlan, FaultStats, LinkFate};
use crate::wheel::TimerWheel;
use tempered_core::ids::RankId;
use tempered_core::rng::RngFactory;
use tempered_obs::NetworkStats;
use tempered_obs::{EventKind, Recorder};

use rand::rngs::SmallRng;
use rand::Rng;

/// Latency model applied to every message.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Fixed per-message latency (virtual seconds).
    pub base_latency: f64,
    /// Additional latency per payload byte.
    pub per_byte: f64,
    /// Uniform jitter amplitude: actual latency is multiplied by a factor
    /// drawn from `[1, 1 + jitter]`. Drawn from a seeded stream, so jitter
    /// is deterministic.
    pub jitter: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Ballpark EDR InfiniBand: ~1 µs base, ~0.08 ns/byte (12.5 GB/s).
        NetworkModel {
            base_latency: 1.0e-6,
            per_byte: 8.0e-11,
            jitter: 0.2,
        }
    }
}

impl NetworkModel {
    /// Zero-latency instant network; useful in tests where only causal
    /// order matters.
    pub fn instant() -> Self {
        NetworkModel {
            base_latency: 0.0,
            per_byte: 0.0,
            jitter: 0.0,
        }
    }

    fn latency(&self, bytes: usize, rng: &mut SmallRng) -> f64 {
        let raw = self.base_latency + self.per_byte * bytes as f64;
        if self.jitter > 0.0 {
            raw * (1.0 + rng.gen::<f64>() * self.jitter)
        } else {
            raw
        }
    }
}

/// A rank-level protocol: the active-message handler interface.
///
/// Implementations are state machines; every rank in a simulation is one
/// instance. `Msg` must be `Clone` because point-to-point fan-out (e.g.
/// broadcast trees) reuses one logical payload for several targets.
pub trait Protocol: Sized {
    /// The protocol's message type.
    type Msg: Clone + std::fmt::Debug;

    /// Invoked once per rank before any message is delivered.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Invoked for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: RankId, msg: Self::Msg);

    /// Invoked on every rank when the event queue drains (simulator-level
    /// quiescence — global ground truth). Default: no-op.
    fn on_quiescence(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Whether this rank considers the protocol finished; the executor
    /// stops early once every rank reports done *and* no events remain.
    fn is_done(&self) -> bool {
        false
    }

    /// Whether a message is subject to fault injection. Defaults to
    /// everything; protocols embedding reliable and best-effort traffic
    /// side by side (e.g. the PIC application, whose particle exchange
    /// models an MPI transport) override this to expose only the traffic
    /// their hardening actually protects.
    fn faultable(_msg: &Self::Msg) -> bool {
        true
    }

    /// The damaged form `msg` takes when a link-level `Corrupt` fault
    /// hits it in flight, or `None` when the protocol has no corruption
    /// model — the executors then treat the damage as loss (detection is
    /// assumed perfect). Protocols that checksum their frames return a
    /// frame whose stored checksum no longer matches its bytes, so the
    /// *receiver* detects the damage and drops it (see
    /// `lb::messages::LbWire::damaged`).
    fn corrupted(_msg: &Self::Msg) -> Option<Self::Msg> {
        None
    }
}

/// Handler context: the only channel for effects.
pub struct Ctx<'a, M> {
    /// This rank's id.
    me: RankId,
    now: f64,
    outbox: &'a mut Vec<(RankId, M, usize)>,
    timers: TimerSink<'a, M>,
}

/// Where scheduled timers accumulate: a context-owned vector (detached /
/// executor contexts) or a caller-owned buffer reused across handler
/// invocations (the simulator's hot loop, which would otherwise pay one
/// allocation per delivered event).
enum TimerSink<'a, M> {
    Owned(Vec<(f64, M)>),
    Borrowed(&'a mut Vec<(f64, M)>),
}

impl<M> TimerSink<'_, M> {
    #[inline]
    fn as_mut(&mut self) -> &mut Vec<(f64, M)> {
        match self {
            TimerSink::Owned(v) => v,
            TimerSink::Borrowed(v) => v,
        }
    }
}

impl<'a, M> Ctx<'a, M> {
    /// Construct a context for an executor implementation (used by the
    /// threaded executor in [`crate::parallel`]).
    pub(crate) fn for_executor(
        me: RankId,
        now: f64,
        outbox: &'a mut Vec<(RankId, M, usize)>,
    ) -> Self {
        Ctx {
            me,
            now,
            outbox,
            timers: TimerSink::Owned(Vec::new()),
        }
    }

    /// Executor context writing timers into a caller-owned buffer, so a
    /// hot event loop reuses one allocation for every handler call. The
    /// caller drains the buffer after the handler instead of
    /// [`Ctx::take_timers`].
    pub(crate) fn for_executor_reusing(
        me: RankId,
        now: f64,
        outbox: &'a mut Vec<(RankId, M, usize)>,
        timers: &'a mut Vec<(f64, M)>,
    ) -> Self {
        Ctx {
            me,
            now,
            outbox,
            timers: TimerSink::Borrowed(timers),
        }
    }

    /// Construct a detached context for *protocol composition*: an outer
    /// protocol embedding an inner one (with a different message type)
    /// collects the inner protocol's sends in `outbox`, then wraps and
    /// re-sends them through its own context. The embedded LB protocol
    /// inside the distributed PIC application uses exactly this.
    pub fn detached(me: RankId, now: f64, outbox: &'a mut Vec<(RankId, M, usize)>) -> Self {
        Ctx {
            me,
            now,
            outbox,
            timers: TimerSink::Owned(Vec::new()),
        }
    }

    /// The rank executing the current handler.
    #[inline]
    pub fn me(&self) -> RankId {
        self.me
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Send `msg` to `to`, accounting `payload_bytes` against the latency
    /// model and the network statistics.
    pub fn send(&mut self, to: RankId, msg: M, payload_bytes: usize) {
        self.outbox.push((to, msg, payload_bytes));
    }

    /// Deliver `msg` back to *this* rank after `delay` seconds (virtual
    /// seconds under the simulator, approximate wall-clock under
    /// threads). Timers are local: they bypass the network model, the
    /// network statistics, and fault injection. Retransmission timeouts
    /// and stage deadlines are built on this.
    pub fn schedule(&mut self, delay: f64, msg: M) {
        self.timers.as_mut().push((delay.max(0.0), msg));
    }

    /// Drain the timers scheduled during this handler invocation.
    /// Executors call this after each handler; composing protocols
    /// (outer protocol pumping an inner one through a detached context)
    /// re-schedule the drained timers through their own context.
    pub fn take_timers(&mut self) -> Vec<(f64, M)> {
        std::mem::take(self.timers.as_mut())
    }
}

/// Event payload; delivery time and the deterministic FIFO tie-break
/// (push sequence) live in the [`TimerWheel`] keying the queue.
#[derive(Debug)]
struct Event<M> {
    to: RankId,
    from: RankId,
    msg: M,
    /// Self-scheduled timer (not a network message).
    timer: bool,
}

/// Outcome of an executed simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Final virtual time (the protocol's modeled makespan).
    pub finish_time: f64,
    /// Total events delivered.
    pub events_delivered: u64,
    /// Network accounting.
    pub network: NetworkStats,
    /// Injected-fault accounting (all zero without a fault plan).
    pub faults: FaultStats,
    /// Whether the run ended because every rank reported done (vs. queue
    /// exhaustion).
    pub completed: bool,
}

/// The deterministic event-driven executor.
pub struct Simulator<P: Protocol> {
    ranks: Vec<P>,
    queue: TimerWheel<f64, Event<P::Msg>>,
    model: NetworkModel,
    rng: SmallRng,
    now: f64,
    stats: NetworkStats,
    injector: Option<FaultInjector>,
    crash_sched: CrashSchedule,
    /// Deliveries discarded because the destination was crashed.
    crash_dropped: u64,
    events_delivered: u64,
    recorder: Recorder,
    /// Network (non-timer) events currently queued; lets the executor
    /// finish without draining still-armed timers of completed ranks.
    net_in_queue: u64,
    /// Safety valve against protocol bugs that livelock the simulation.
    pub max_events: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Build a simulator over per-rank protocol instances.
    pub fn new(ranks: Vec<P>, model: NetworkModel, factory: &RngFactory) -> Self {
        let rng = factory.rank_stream(b"simnet", 0, 0);
        // Wheel quantum: one base network latency per bucket, so most
        // arrivals land a slot or two ahead of the cursor. Zero-latency
        // models fall back to a 1 µs quantum (everything then shares tick
        // 0, where the sorted current bucket still orders exactly).
        let quantum = if model.base_latency > 0.0 {
            model.base_latency
        } else {
            1.0e-6
        };
        Simulator {
            ranks,
            queue: TimerWheel::new(1.0 / quantum),
            model,
            rng,
            now: 0.0,
            stats: NetworkStats::default(),
            injector: None,
            crash_sched: CrashSchedule::default(),
            crash_dropped: 0,
            events_delivered: 0,
            recorder: Recorder::disabled(),
            net_in_queue: 0,
            max_events: 500_000_000,
        }
    }

    /// Install a fault plan. A [`FaultPlan::is_zero`] plan is discarded
    /// outright, guaranteeing a bit-identical run: fault decisions never
    /// touch the simulator's random stream, so the only way a plan can
    /// perturb anything is by actually injecting a fault.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.crash_sched = CrashSchedule::new(&plan.crashes);
        self.injector = if plan.is_zero() {
            plan.validate_or_panic();
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// Attach an observability recorder. Fault injections and network
    /// latency draws are recorded against it (stamped with virtual time),
    /// and the executor's network/fault totals are flushed into its
    /// metrics registry when [`Simulator::run`] returns. Recording never
    /// touches the simulator's random stream, so attaching a recorder
    /// cannot perturb a run.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable view of a rank's protocol state.
    pub fn rank(&self, r: RankId) -> &P {
        &self.ranks[r.as_usize()]
    }

    /// Consume the simulator and return the final per-rank states.
    pub fn into_ranks(self) -> Vec<P> {
        self.ranks
    }

    /// A rank no longer blocks completion: it reported done, or it crashed
    /// for good — a permanently dead rank can never report anything, so
    /// waiting on it would turn every fatal crash into a hang.
    fn rank_finished(&self, p: usize) -> bool {
        self.ranks[p].is_done() || self.crash_sched.is_down_forever(RankId::from(p), self.now)
    }

    fn flush_outbox(&mut self, from: RankId, outbox: &mut Vec<(RankId, P::Msg, usize)>) {
        for (to, msg, bytes) in outbox.drain(..) {
            assert!(
                to.as_usize() < self.ranks.len(),
                "send to out-of-range rank {to}"
            );
            // The latency draw and network accounting happen for every
            // send — including ones the injector then drops — so the
            // random stream and stats stay aligned with a fault-free run.
            let latency = self.model.latency(bytes, &mut self.rng);
            self.stats.record(bytes);
            if self.recorder.is_enabled() {
                self.recorder
                    .observe("sim.net.latency_ns", (latency * 1e9) as u64);
            }
            let Some(inj) = &mut self.injector else {
                self.net_in_queue += 1;
                self.queue.push(
                    self.now + latency,
                    Event {
                        to,
                        from,
                        msg,
                        timer: false,
                    },
                );
                continue;
            };
            let faultable = P::faultable(&msg);
            let fate = if faultable {
                inj.fate(from, to)
            } else {
                Fate::clean()
            };
            // The link layer rules on the same send: a cut severs every
            // copy, a delay compounds with the per-message fate, a
            // corruption damages the payload in flight. Send time (virtual
            // `now`) decides which windows are open.
            let link = if faultable {
                inj.link_fate(from, to, self.now)
            } else {
                LinkFate::clean()
            };
            if faultable && self.recorder.is_enabled() {
                let fault = |kind| EventKind::Fault {
                    kind,
                    to: to.as_u32(),
                };
                if fate.copies == 0 {
                    self.recorder
                        .instant(from.as_u32(), self.now, fault("drop"));
                } else if fate.copies > 1 {
                    self.recorder
                        .instant(from.as_u32(), self.now, fault("duplicate"));
                }
                if fate.delay_factor > 1.0 {
                    self.recorder
                        .instant(from.as_u32(), self.now, fault("delay"));
                }
                if link.cut {
                    self.recorder
                        .instant(from.as_u32(), self.now, fault("link_cut"));
                }
                if link.delay_factor > 1.0 {
                    self.recorder
                        .instant(from.as_u32(), self.now, fault("link_delay"));
                }
                if link.corrupt {
                    self.recorder
                        .instant(from.as_u32(), self.now, fault("corrupt"));
                }
            }
            if link.cut {
                continue;
            }
            let msg = if link.corrupt {
                match P::corrupted(&msg) {
                    Some(bad) => bad,
                    // No corruption model: the damage is indistinguishable
                    // from loss.
                    None => continue,
                }
            } else {
                msg
            };
            let mut msg = Some(msg);
            for copy in 0..fate.copies {
                // A duplicated copy trails the original at double latency,
                // like a retransmission overlapping the first delivery.
                let mut arrival =
                    self.now + latency * fate.delay_factor * link.delay_factor * (copy + 1) as f64;
                if faultable {
                    if let Some(until) = inj.deferred_until(to, arrival) {
                        arrival = until;
                        self.recorder.instant(
                            from.as_u32(),
                            self.now,
                            EventKind::Fault {
                                kind: "pause",
                                to: to.as_u32(),
                            },
                        );
                    }
                }
                self.net_in_queue += 1;
                // The last copy moves the payload; only duplicated copies
                // clone (copies == 1 in the fault-free fast path).
                let m = if copy + 1 == fate.copies {
                    msg.take().expect("one take per copy")
                } else {
                    msg.as_ref().expect("taken only by the last copy").clone()
                };
                self.queue.push(
                    arrival,
                    Event {
                        to,
                        from,
                        msg: m,
                        timer: false,
                    },
                );
            }
        }
    }

    fn flush_timers(&mut self, me: RankId, timers: &mut Vec<(f64, P::Msg)>) {
        for (delay, msg) in timers.drain(..) {
            self.queue.push(
                self.now + delay,
                Event {
                    to: me,
                    from: me,
                    msg,
                    timer: true,
                },
            );
        }
    }

    /// Run until every rank is done (and no network events remain), the
    /// queue drains with no progress, or the event budget is exhausted.
    pub fn run(&mut self) -> SimReport {
        let mut outbox: Vec<(RankId, P::Msg, usize)> = Vec::new();
        let mut timers: Vec<(f64, P::Msg)> = Vec::new();

        // Start handlers.
        for p in 0..self.ranks.len() {
            let me = RankId::from(p);
            let mut ctx = Ctx::for_executor_reusing(me, self.now, &mut outbox, &mut timers);
            self.ranks[p].on_start(&mut ctx);
            drop(ctx);
            self.flush_outbox(me, &mut outbox);
            self.flush_timers(me, &mut timers);
        }

        loop {
            // Done ranks may still hold armed timers (e.g. a retry timer
            // for a message acknowledged later); those must not inflate
            // the makespan, so only network events block completion.
            // Checked before popping so a pending far-future timer never
            // advances the clock of an already-finished run.
            if self.net_in_queue == 0 && (0..self.ranks.len()).all(|p| self.rank_finished(p)) {
                break;
            }
            if self.events_delivered >= self.max_events {
                panic!(
                    "simulation exceeded {} events: protocol livelock?",
                    self.max_events
                );
            }
            match self.queue.pop() {
                Some((time, ev)) => {
                    debug_assert!(time >= self.now, "time must be monotone");
                    self.now = time;
                    if !ev.timer {
                        self.net_in_queue -= 1;
                    }
                    // Crash-stop: anything addressed to a down rank —
                    // messages and its own timers — is discarded at
                    // arrival time. Suppression happens at *pop* time,
                    // never at send time, so the latency draws (taken per
                    // send in `flush_outbox`) stay aligned with a
                    // crash-free run; the clock still advances so the
                    // down-forever accounting above sees crash times pass.
                    if self.crash_sched.is_down(ev.to, time) {
                        self.crash_dropped += 1;
                        if self.recorder.is_enabled() {
                            self.recorder.instant(
                                ev.from.as_u32(),
                                time,
                                EventKind::Fault {
                                    kind: "crash_drop",
                                    to: ev.to.as_u32(),
                                },
                            );
                        }
                        continue;
                    }
                    self.events_delivered += 1;
                    let to = ev.to.as_usize();
                    let mut ctx =
                        Ctx::for_executor_reusing(ev.to, self.now, &mut outbox, &mut timers);
                    self.ranks[to].on_message(&mut ctx, ev.from, ev.msg);
                    drop(ctx);
                    self.flush_outbox(ev.to, &mut outbox);
                    self.flush_timers(ev.to, &mut timers);
                }
                None => {
                    // Queue drained: report quiescence to every rank; a
                    // protocol may respond by sending more messages (e.g.
                    // starting its next stage in tests).
                    for p in 0..self.ranks.len() {
                        let me = RankId::from(p);
                        let mut ctx =
                            Ctx::for_executor_reusing(me, self.now, &mut outbox, &mut timers);
                        self.ranks[p].on_quiescence(&mut ctx);
                        drop(ctx);
                        self.flush_outbox(me, &mut outbox);
                        self.flush_timers(me, &mut timers);
                    }
                    if self.queue.is_empty() {
                        break;
                    }
                }
            }
        }

        let mut faults = self.injector.as_ref().map(|i| i.stats).unwrap_or_default();
        faults.crash_dropped += self.crash_dropped;
        self.recorder.with_metrics(|m| {
            m.record_network("sim.net", &self.stats);
            m.counter_add("sim.events_delivered", self.events_delivered);
            m.gauge_max("sim.finish_time_s", self.now);
            m.counter_add("fault.faultable", faults.faultable);
            m.counter_add("fault.dropped", faults.dropped);
            m.counter_add("fault.duplicated", faults.duplicated);
            m.counter_add("fault.spiked", faults.spiked);
            m.counter_add("fault.reordered", faults.reordered);
            m.counter_add("fault.straggled", faults.straggled);
            m.counter_add("fault.paused", faults.paused);
            m.counter_add("fault.crash_dropped", faults.crash_dropped);
            m.counter_add("fault.link_cut", faults.link_cut);
            m.counter_add("fault.link_delayed", faults.link_delayed);
            m.counter_add("fault.corrupted", faults.corrupted);
        });
        SimReport {
            finish_time: self.now,
            events_delivered: self.events_delivered,
            network: self.stats.clone(),
            faults,
            completed: (0..self.ranks.len()).all(|p| self.rank_finished(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: rank 0 pings everyone; everyone pongs back; rank 0
    /// counts pongs.
    #[derive(Debug)]
    struct PingPong {
        me: usize,
        num_ranks: usize,
        pongs: usize,
        done: bool,
    }

    #[derive(Clone, Debug)]
    enum PpMsg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = PpMsg;

        fn on_start(&mut self, ctx: &mut Ctx<'_, PpMsg>) {
            if self.me == 0 {
                for r in 1..self.num_ranks {
                    ctx.send(RankId::from(r), PpMsg::Ping, 8);
                }
                if self.num_ranks == 1 {
                    self.done = true;
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, PpMsg>, from: RankId, msg: PpMsg) {
            match msg {
                PpMsg::Ping => {
                    ctx.send(from, PpMsg::Pong, 8);
                    self.done = true;
                }
                PpMsg::Pong => {
                    self.pongs += 1;
                    if self.pongs == self.num_ranks - 1 {
                        self.done = true;
                    }
                }
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn make(n: usize) -> Vec<PingPong> {
        (0..n)
            .map(|me| PingPong {
                me,
                num_ranks: n,
                pongs: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn ping_pong_completes() {
        let mut sim = Simulator::new(make(8), NetworkModel::default(), &RngFactory::new(1));
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.events_delivered, 14); // 7 pings + 7 pongs
        assert_eq!(report.network.messages, 14);
        assert!(report.finish_time > 0.0);
        assert_eq!(sim.rank(RankId::new(0)).pongs, 7);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = |seed| {
            let mut sim = Simulator::new(make(16), NetworkModel::default(), &RngFactory::new(seed));
            sim.run().finish_time
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "jitter should differ across seeds");
    }

    #[test]
    fn instant_network_has_zero_time() {
        let mut sim = Simulator::new(make(4), NetworkModel::instant(), &RngFactory::new(1));
        let report = sim.run();
        assert_eq!(report.finish_time, 0.0);
        assert!(report.completed);
    }

    #[test]
    fn single_rank_finishes_immediately() {
        let mut sim = Simulator::new(make(1), NetworkModel::default(), &RngFactory::new(1));
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.events_delivered, 0);
    }

    /// Failure injection: a protocol that ping-pongs forever must trip
    /// the event budget instead of spinning the simulator.
    #[test]
    #[should_panic(expected = "livelock")]
    fn livelock_protocol_trips_event_budget() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                if ctx.me() == RankId::new(0) {
                    ctx.send(RankId::new(1), 0, 1);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: RankId, msg: u8) {
                ctx.send(from, msg, 1); // bounce forever
            }
        }
        let mut sim = Simulator::new(
            vec![Forever, Forever],
            NetworkModel::instant(),
            &RngFactory::new(1),
        );
        sim.max_events = 10_000;
        sim.run();
    }

    #[test]
    fn zeroed_fault_plan_is_bit_identical() {
        let run = |with_plan: bool| {
            let mut sim = Simulator::new(make(16), NetworkModel::default(), &RngFactory::new(5));
            if with_plan {
                sim.set_fault_plan(FaultPlan::none());
            }
            let r = sim.run();
            (
                r.finish_time.to_bits(),
                r.events_delivered,
                r.network.messages,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn full_drop_starves_the_protocol() {
        let mut sim = Simulator::new(make(8), NetworkModel::default(), &RngFactory::new(1));
        sim.set_fault_plan(FaultPlan {
            drop: 1.0,
            ..FaultPlan::none()
        });
        let report = sim.run();
        assert!(!report.completed, "no message can arrive");
        assert_eq!(report.events_delivered, 0);
        assert_eq!(report.faults.dropped, 7);
        // Accounting still sees the send attempts.
        assert_eq!(report.network.messages, 7);
    }

    #[test]
    fn duplication_is_tolerated_by_idempotent_protocols() {
        let mut sim = Simulator::new(make(8), NetworkModel::default(), &RngFactory::new(1));
        sim.set_fault_plan(FaultPlan {
            seed: 3,
            duplicate: 1.0,
            ..FaultPlan::none()
        });
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(
            report.faults.duplicated as usize,
            report.network.messages as usize
        );
        assert!(report.events_delivered > 14);
    }

    #[test]
    fn stragglers_stretch_the_makespan() {
        let base = {
            let mut sim = Simulator::new(make(8), NetworkModel::default(), &RngFactory::new(1));
            sim.run().finish_time
        };
        let slow = {
            let mut sim = Simulator::new(make(8), NetworkModel::default(), &RngFactory::new(1));
            sim.set_fault_plan(FaultPlan {
                stragglers: vec![(RankId::new(3), 50.0)],
                ..FaultPlan::none()
            });
            sim.run().finish_time
        };
        assert!(
            slow > base * 2.0,
            "straggler must dominate: {base} vs {slow}"
        );
    }

    #[test]
    fn timers_fire_at_their_virtual_time_without_network_accounting() {
        struct Timed {
            fired_at: Option<f64>,
            done: bool,
        }
        impl Protocol for Timed {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                ctx.schedule(0.5, 7);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: RankId, msg: u8) {
                assert_eq!(from, ctx.me(), "timers deliver from self");
                assert_eq!(msg, 7);
                self.fired_at = Some(ctx.now());
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let mut sim = Simulator::new(
            vec![Timed {
                fired_at: None,
                done: false,
            }],
            NetworkModel::default(),
            &RngFactory::new(1),
        );
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(sim.rank(RankId::new(0)).fired_at, Some(0.5));
        assert_eq!(report.network.messages, 0, "timers are not network traffic");
    }

    #[test]
    fn pending_timers_do_not_inflate_the_makespan() {
        // A rank arms a long timer but is done immediately; the run must
        // not wait for the timer.
        struct ArmAndQuit;
        impl Protocol for ArmAndQuit {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                ctx.schedule(1e6, 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: RankId, _: u8) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let mut sim = Simulator::new(
            vec![ArmAndQuit, ArmAndQuit],
            NetworkModel::default(),
            &RngFactory::new(1),
        );
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.finish_time, 0.0);
    }

    #[test]
    fn pause_window_defers_delivery() {
        // Ping sent at t=0 arrives within rank 1's pause window and is
        // deferred to the window end.
        struct Recorder {
            me: usize,
            arrived: Option<f64>,
        }
        impl Protocol for Recorder {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                if self.me == 0 {
                    ctx.send(RankId::new(1), 1, 8);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, _: RankId, _: u8) {
                self.arrived = Some(ctx.now());
            }
            fn is_done(&self) -> bool {
                self.me == 0 || self.arrived.is_some()
            }
        }
        let mut sim = Simulator::new(
            vec![
                Recorder {
                    me: 0,
                    arrived: None,
                },
                Recorder {
                    me: 1,
                    arrived: None,
                },
            ],
            NetworkModel::default(),
            &RngFactory::new(1),
        );
        sim.set_fault_plan(FaultPlan {
            pauses: vec![crate::fault::PauseWindow {
                rank: RankId::new(1),
                from: 0.0,
                until: 2.0,
            }],
            ..FaultPlan::none()
        });
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(sim.rank(RankId::new(1)).arrived, Some(2.0));
        assert_eq!(report.faults.paused, 1);
    }

    /// Rank 0 pings every other rank and is done after enough pongs;
    /// `expected_dead` lowers the quorum so survivors can finish.
    struct QuorumPing {
        me: usize,
        num_ranks: usize,
        expected_dead: usize,
        pongs: usize,
        done: bool,
    }

    impl Protocol for QuorumPing {
        type Msg = PpMsg;

        fn on_start(&mut self, ctx: &mut Ctx<'_, PpMsg>) {
            if self.me == 0 {
                for r in 1..self.num_ranks {
                    ctx.send(RankId::from(r), PpMsg::Ping, 8);
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, PpMsg>, from: RankId, msg: PpMsg) {
            match msg {
                PpMsg::Ping => {
                    ctx.send(from, PpMsg::Pong, 8);
                    self.done = true;
                }
                PpMsg::Pong => {
                    self.pongs += 1;
                    if self.pongs >= self.num_ranks - 1 - self.expected_dead {
                        self.done = true;
                    }
                }
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn quorum(n: usize, expected_dead: usize) -> Vec<QuorumPing> {
        (0..n)
            .map(|me| QuorumPing {
                me,
                num_ranks: n,
                expected_dead,
                pongs: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn fatal_crash_silences_the_rank_and_still_completes() {
        use crate::fault::CrashEvent;
        let mut sim = Simulator::new(quorum(8, 1), NetworkModel::default(), &RngFactory::new(1));
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashEvent::fatal(RankId::new(3), 0.0)],
            ..FaultPlan::none()
        });
        let report = sim.run();
        // The ping addressed to the dead rank is discarded at arrival.
        assert_eq!(report.faults.crash_dropped, 1);
        // Rank 0 collects the 6 surviving pongs; the dead rank counts as
        // finished, so the run completes instead of hanging.
        assert!(report.completed);
        assert_eq!(sim.rank(RankId::new(0)).pongs, 6);
        assert!(!sim.rank(RankId::new(3)).is_done());
    }

    #[test]
    fn fatal_crash_starves_a_protocol_that_needs_everyone() {
        use crate::fault::CrashEvent;
        let mut sim = Simulator::new(quorum(8, 0), NetworkModel::default(), &RngFactory::new(1));
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashEvent::fatal(RankId::new(3), 0.0)],
            ..FaultPlan::none()
        });
        let report = sim.run();
        assert!(!report.completed, "rank 0 still waits for the dead pong");
        assert!(!sim.rank(RankId::new(0)).is_done());
    }

    #[test]
    fn warm_restart_resumes_delivery_but_loses_in_flight_messages() {
        use crate::fault::CrashEvent;
        // Rank 0 pings rank 1 at t=0 (lost in the outage) and again at
        // t=5 via a timer (delivered after the restart).
        struct TwoPings {
            me: usize,
            got: Vec<u8>,
            sent_second: bool,
        }
        impl Protocol for TwoPings {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                if self.me == 0 {
                    ctx.send(RankId::new(1), 1, 8);
                    ctx.schedule(5.0, 0);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: RankId, msg: u8) {
                if from == ctx.me() {
                    ctx.send(RankId::new(1), 2, 8);
                    self.sent_second = true;
                } else {
                    self.got.push(msg);
                }
            }
            fn is_done(&self) -> bool {
                if self.me == 0 {
                    self.sent_second
                } else {
                    !self.got.is_empty()
                }
            }
        }
        let mk = |me| TwoPings {
            me,
            got: Vec::new(),
            sent_second: false,
        };
        let mut sim = Simulator::new(
            vec![mk(0), mk(1)],
            NetworkModel::default(),
            &RngFactory::new(1),
        );
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashEvent {
                rank: RankId::new(1),
                at: 0.0,
                restart_after: Some(1.0),
            }],
            ..FaultPlan::none()
        });
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.faults.crash_dropped, 1, "first ping lost in outage");
        assert_eq!(
            sim.rank(RankId::new(1)).got,
            vec![2],
            "second ping delivered"
        );
    }

    #[test]
    fn crash_after_completion_is_bit_identical_to_no_plan() {
        use crate::fault::CrashEvent;
        let run = |with_crash: bool| {
            let mut sim = Simulator::new(make(16), NetworkModel::default(), &RngFactory::new(5));
            if with_crash {
                sim.set_fault_plan(FaultPlan {
                    crashes: vec![CrashEvent::fatal(RankId::new(5), 1e6)],
                    ..FaultPlan::none()
                });
            }
            let r = sim.run();
            (
                r.finish_time.to_bits(),
                r.events_delivered,
                r.network.messages,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn latency_scales_with_bytes() {
        let model = NetworkModel {
            base_latency: 1.0,
            per_byte: 1.0,
            jitter: 0.0,
        };
        let mut rng = RngFactory::new(0).rank_stream(b"x", 0, 0);
        assert_eq!(model.latency(0, &mut rng), 1.0);
        assert_eq!(model.latency(10, &mut rng), 11.0);
    }
}
