//! Deterministic discrete-event executor for rank protocols.
//!
//! This is the substrate standing in for the paper's DARMA/vt runtime over
//! MPI: a set of ranks exchanging *active messages*, each message
//! triggering a handler on the target rank. The executor delivers
//! messages in virtual-time order under a configurable latency model, so
//! an entire distributed protocol — gossip, collectives, termination
//! detection, migration — runs bit-reproducibly from a seed while
//! exercising exactly the code a real asynchronous runtime would.
//!
//! Design notes:
//!
//! * Events are ordered by `(virtual time, sequence number)`; the sequence
//!   number breaks ties deterministically, so runs are reproducible even
//!   when many messages share a timestamp.
//! * Handlers never touch other ranks directly: all effects flow through
//!   [`Ctx::send`]. This keeps protocol implementations portable to the
//!   multi-threaded executor in [`crate::parallel`], which provides the
//!   same trait with real concurrency.
//! * The executor exposes an [`Protocol::on_quiescence`] hook fired when
//!   the event queue drains. Protocol code may use it for test
//!   scaffolding, but the shipped LB protocol sequences itself with the
//!   distributed termination detector in [`crate::termination`] — the
//!   simulator hook exists to *validate* the detector against ground
//!   truth.

use crate::stats::NetworkStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tempered_core::ids::RankId;
use tempered_core::rng::RngFactory;

use rand::rngs::SmallRng;
use rand::Rng;

/// Latency model applied to every message.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Fixed per-message latency (virtual seconds).
    pub base_latency: f64,
    /// Additional latency per payload byte.
    pub per_byte: f64,
    /// Uniform jitter amplitude: actual latency is multiplied by a factor
    /// drawn from `[1, 1 + jitter]`. Drawn from a seeded stream, so jitter
    /// is deterministic.
    pub jitter: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Ballpark EDR InfiniBand: ~1 µs base, ~0.08 ns/byte (12.5 GB/s).
        NetworkModel {
            base_latency: 1.0e-6,
            per_byte: 8.0e-11,
            jitter: 0.2,
        }
    }
}

impl NetworkModel {
    /// Zero-latency instant network; useful in tests where only causal
    /// order matters.
    pub fn instant() -> Self {
        NetworkModel {
            base_latency: 0.0,
            per_byte: 0.0,
            jitter: 0.0,
        }
    }

    fn latency(&self, bytes: usize, rng: &mut SmallRng) -> f64 {
        let raw = self.base_latency + self.per_byte * bytes as f64;
        if self.jitter > 0.0 {
            raw * (1.0 + rng.gen::<f64>() * self.jitter)
        } else {
            raw
        }
    }
}

/// A rank-level protocol: the active-message handler interface.
///
/// Implementations are state machines; every rank in a simulation is one
/// instance. `Msg` must be `Clone` because point-to-point fan-out (e.g.
/// broadcast trees) reuses one logical payload for several targets.
pub trait Protocol: Sized {
    /// The protocol's message type.
    type Msg: Clone + std::fmt::Debug;

    /// Invoked once per rank before any message is delivered.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Invoked for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: RankId, msg: Self::Msg);

    /// Invoked on every rank when the event queue drains (simulator-level
    /// quiescence — global ground truth). Default: no-op.
    fn on_quiescence(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Whether this rank considers the protocol finished; the executor
    /// stops early once every rank reports done *and* no events remain.
    fn is_done(&self) -> bool {
        false
    }
}

/// Handler context: the only channel for effects.
pub struct Ctx<'a, M> {
    /// This rank's id.
    me: RankId,
    now: f64,
    outbox: &'a mut Vec<(RankId, M, usize)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Construct a context for an executor implementation (used by the
    /// threaded executor in [`crate::parallel`]).
    pub(crate) fn for_executor(
        me: RankId,
        now: f64,
        outbox: &'a mut Vec<(RankId, M, usize)>,
    ) -> Self {
        Ctx { me, now, outbox }
    }

    /// Construct a detached context for *protocol composition*: an outer
    /// protocol embedding an inner one (with a different message type)
    /// collects the inner protocol's sends in `outbox`, then wraps and
    /// re-sends them through its own context. The embedded LB protocol
    /// inside the distributed PIC application uses exactly this.
    pub fn detached(me: RankId, now: f64, outbox: &'a mut Vec<(RankId, M, usize)>) -> Self {
        Ctx { me, now, outbox }
    }

    /// The rank executing the current handler.
    #[inline]
    pub fn me(&self) -> RankId {
        self.me
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Send `msg` to `to`, accounting `payload_bytes` against the latency
    /// model and the network statistics.
    pub fn send(&mut self, to: RankId, msg: M, payload_bytes: usize) {
        self.outbox.push((to, msg, payload_bytes));
    }
}

#[derive(Debug)]
struct Event<M> {
    time: f64,
    seq: u64,
    to: RankId,
    from: RankId,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of an executed simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Final virtual time (the protocol's modeled makespan).
    pub finish_time: f64,
    /// Total events delivered.
    pub events_delivered: u64,
    /// Network accounting.
    pub network: NetworkStats,
    /// Whether the run ended because every rank reported done (vs. queue
    /// exhaustion).
    pub completed: bool,
}

/// The deterministic event-driven executor.
pub struct Simulator<P: Protocol> {
    ranks: Vec<P>,
    queue: BinaryHeap<Reverse<Event<P::Msg>>>,
    model: NetworkModel,
    rng: SmallRng,
    now: f64,
    seq: u64,
    stats: NetworkStats,
    events_delivered: u64,
    /// Safety valve against protocol bugs that livelock the simulation.
    pub max_events: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Build a simulator over per-rank protocol instances.
    pub fn new(ranks: Vec<P>, model: NetworkModel, factory: &RngFactory) -> Self {
        let rng = factory.rank_stream(b"simnet", 0, 0);
        Simulator {
            ranks,
            queue: BinaryHeap::new(),
            model,
            rng,
            now: 0.0,
            seq: 0,
            stats: NetworkStats::default(),
            events_delivered: 0,
            max_events: 500_000_000,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable view of a rank's protocol state.
    pub fn rank(&self, r: RankId) -> &P {
        &self.ranks[r.as_usize()]
    }

    /// Consume the simulator and return the final per-rank states.
    pub fn into_ranks(self) -> Vec<P> {
        self.ranks
    }

    fn flush_outbox(&mut self, from: RankId, outbox: &mut Vec<(RankId, P::Msg, usize)>) {
        for (to, msg, bytes) in outbox.drain(..) {
            assert!(
                to.as_usize() < self.ranks.len(),
                "send to out-of-range rank {to}"
            );
            let latency = self.model.latency(bytes, &mut self.rng);
            self.stats.record(bytes);
            self.seq += 1;
            self.queue.push(Reverse(Event {
                time: self.now + latency,
                seq: self.seq,
                to,
                from,
                msg,
            }));
        }
    }

    /// Run until every rank is done (and the queue is empty), the queue
    /// drains with no progress, or the event budget is exhausted.
    pub fn run(&mut self) -> SimReport {
        let mut outbox: Vec<(RankId, P::Msg, usize)> = Vec::new();

        // Start handlers.
        for p in 0..self.ranks.len() {
            let me = RankId::from(p);
            let mut ctx = Ctx {
                me,
                now: self.now,
                outbox: &mut outbox,
            };
            self.ranks[p].on_start(&mut ctx);
            self.flush_outbox(me, &mut outbox);
        }

        loop {
            if self.events_delivered >= self.max_events {
                panic!(
                    "simulation exceeded {} events: protocol livelock?",
                    self.max_events
                );
            }
            match self.queue.pop() {
                Some(Reverse(ev)) => {
                    debug_assert!(ev.time >= self.now, "time must be monotone");
                    self.now = ev.time;
                    self.events_delivered += 1;
                    let to = ev.to.as_usize();
                    let mut ctx = Ctx {
                        me: ev.to,
                        now: self.now,
                        outbox: &mut outbox,
                    };
                    self.ranks[to].on_message(&mut ctx, ev.from, ev.msg);
                    self.flush_outbox(ev.to, &mut outbox);
                }
                None => {
                    // Queue drained: report quiescence to every rank; a
                    // protocol may respond by sending more messages (e.g.
                    // starting its next stage in tests).
                    for p in 0..self.ranks.len() {
                        let me = RankId::from(p);
                        let mut ctx = Ctx {
                            me,
                            now: self.now,
                            outbox: &mut outbox,
                        };
                        self.ranks[p].on_quiescence(&mut ctx);
                        self.flush_outbox(me, &mut outbox);
                    }
                    if self.queue.is_empty() {
                        break;
                    }
                }
            }
            if self.queue.is_empty() && self.ranks.iter().all(|r| r.is_done()) {
                break;
            }
        }

        SimReport {
            finish_time: self.now,
            events_delivered: self.events_delivered,
            network: self.stats.clone(),
            completed: self.ranks.iter().all(|r| r.is_done()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: rank 0 pings everyone; everyone pongs back; rank 0
    /// counts pongs.
    #[derive(Debug)]
    struct PingPong {
        me: usize,
        num_ranks: usize,
        pongs: usize,
        done: bool,
    }

    #[derive(Clone, Debug)]
    enum PpMsg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = PpMsg;

        fn on_start(&mut self, ctx: &mut Ctx<'_, PpMsg>) {
            if self.me == 0 {
                for r in 1..self.num_ranks {
                    ctx.send(RankId::from(r), PpMsg::Ping, 8);
                }
                if self.num_ranks == 1 {
                    self.done = true;
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, PpMsg>, from: RankId, msg: PpMsg) {
            match msg {
                PpMsg::Ping => {
                    ctx.send(from, PpMsg::Pong, 8);
                    self.done = true;
                }
                PpMsg::Pong => {
                    self.pongs += 1;
                    if self.pongs == self.num_ranks - 1 {
                        self.done = true;
                    }
                }
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn make(n: usize) -> Vec<PingPong> {
        (0..n)
            .map(|me| PingPong {
                me,
                num_ranks: n,
                pongs: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn ping_pong_completes() {
        let mut sim = Simulator::new(make(8), NetworkModel::default(), &RngFactory::new(1));
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.events_delivered, 14); // 7 pings + 7 pongs
        assert_eq!(report.network.messages, 14);
        assert!(report.finish_time > 0.0);
        assert_eq!(sim.rank(RankId::new(0)).pongs, 7);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = |seed| {
            let mut sim =
                Simulator::new(make(16), NetworkModel::default(), &RngFactory::new(seed));
            sim.run().finish_time
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "jitter should differ across seeds");
    }

    #[test]
    fn instant_network_has_zero_time() {
        let mut sim = Simulator::new(make(4), NetworkModel::instant(), &RngFactory::new(1));
        let report = sim.run();
        assert_eq!(report.finish_time, 0.0);
        assert!(report.completed);
    }

    #[test]
    fn single_rank_finishes_immediately() {
        let mut sim = Simulator::new(make(1), NetworkModel::default(), &RngFactory::new(1));
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.events_delivered, 0);
    }

    /// Failure injection: a protocol that ping-pongs forever must trip
    /// the event budget instead of spinning the simulator.
    #[test]
    #[should_panic(expected = "livelock")]
    fn livelock_protocol_trips_event_budget() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                if ctx.me() == RankId::new(0) {
                    ctx.send(RankId::new(1), 0, 1);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: RankId, msg: u8) {
                ctx.send(from, msg, 1); // bounce forever
            }
        }
        let mut sim = Simulator::new(
            vec![Forever, Forever],
            NetworkModel::instant(),
            &RngFactory::new(1),
        );
        sim.max_events = 10_000;
        sim.run();
    }

    #[test]
    fn latency_scales_with_bytes() {
        let model = NetworkModel {
            base_latency: 1.0,
            per_byte: 1.0,
            jitter: 0.0,
        };
        let mut rng = RngFactory::new(0).rank_stream(b"x", 0, 0);
        assert_eq!(model.latency(0, &mut rng), 1.0);
        assert_eq!(model.latency(10, &mut rng), 11.0);
    }
}
