//! Epoch-stamped membership views for crash-stop fault tolerance.
//!
//! A [`View`] is a monotone record of which ranks have been declared
//! dead. Because declarations only ever *add* ranks (crash-stop: the
//! dead stay dead), the dead set is a join-semilattice under union and
//! every rank converges to the same view by gossiping and merging dead
//! sets — no agreement protocol is needed.
//!
//! The **generation** of a view is its *base generation* plus the size
//! of its dead set. Protocol machinery uses the generation to fence
//! cross-view traffic: the LB engine offsets its termination-detection
//! epochs by `generation × VIEW_EPOCH_STRIDE` and stamps its collective
//! slots with the generation, so any message produced under an older
//! view is recognizably stale and dropped (see `lb::engine`). Two ranks
//! can transiently hold different dead sets of the same size, but only
//! when *different* ranks died concurrently — and then further view
//! changes follow until the union is reached, with a full protocol
//! restart on every growth, so the fencing remains conservative.
//!
//! **Partition heal** relaxes crash-stop's "the dead stay dead": a
//! quorum-holding component may re-admit ranks it had fenced out (they
//! were partitioned away, not crashed). A heal *replaces* the dead set,
//! so the join-semilattice argument no longer applies to the dead set
//! alone — instead each heal bumps the view's `base_gen` by
//! `num_ranks + 1`, which exceeds any generation derivable from the
//! previous base (dead sets are bounded by `num_ranks`). Views are then
//! ordered by base generation: [`View::merge_full`] adopts a
//! higher-based view wholesale, unions dead sets at equal bases, and
//! ignores lower bases. The observable generation therefore stays
//! strictly increasing across every view any rank adopts, which keeps
//! the epoch/slot fencing sound, and the merge remains order-insensitive
//! (the convergence proptest in `tests/partition_properties.rs` pins
//! this). Without heals `base_gen` stays 0 and every path reduces
//! bit-exactly to the crash-stop behavior.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tempered_core::ids::RankId;

/// Spacing between the epoch ranges of consecutive view generations.
/// Each LB protocol run uses epochs well below this bound, so offsetting
/// by `generation × VIEW_EPOCH_STRIDE` guarantees epoch ranges of
/// different views never collide.
pub const VIEW_EPOCH_STRIDE: u64 = 1 << 32;

/// A membership view: the full rank set minus the ranks declared dead.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    num_ranks: usize,
    dead: BTreeSet<RankId>,
    /// Heal fence: bumped by `num_ranks + 1` on every partition heal so
    /// post-heal generations dominate every pre-heal one. Zero until the
    /// first heal, keeping crash-stop runs bit-identical.
    base_gen: u64,
}

impl View {
    /// The initial view: everyone alive.
    pub fn new(num_ranks: usize) -> Self {
        View {
            num_ranks,
            dead: BTreeSet::new(),
            base_gen: 0,
        }
    }

    /// Total ranks in the system (live + dead).
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// View generation: grows with every declared death and jumps past
    /// all prior generations on every heal.
    pub fn generation(&self) -> u64 {
        self.base_gen + self.dead.len() as u64
    }

    /// The heal-fence base this view's generation builds on.
    pub fn base_gen(&self) -> u64 {
        self.base_gen
    }

    /// Whether `rank` is still considered alive.
    pub fn is_live(&self, rank: RankId) -> bool {
        !self.dead.contains(&rank)
    }

    /// The set of ranks declared dead.
    pub fn dead(&self) -> &BTreeSet<RankId> {
        &self.dead
    }

    /// Number of surviving ranks.
    pub fn num_live(&self) -> usize {
        self.num_ranks - self.dead.len()
    }

    /// Surviving ranks in ascending order.
    pub fn live_ranks(&self) -> Vec<RankId> {
        (0..self.num_ranks)
            .map(RankId::from)
            .filter(|r| self.is_live(*r))
            .collect()
    }

    /// Declare a single rank dead. Returns `true` if the view grew
    /// (i.e. this was news and the generation advanced).
    pub fn declare_dead(&mut self, rank: RankId) -> bool {
        debug_assert!(rank.as_usize() < self.num_ranks, "unknown rank {rank}");
        self.dead.insert(rank)
    }

    /// Merge a peer's dead set (view-change propagation). Returns `true`
    /// if the union grew our view.
    pub fn merge(&mut self, dead: &BTreeSet<RankId>) -> bool {
        let before = self.dead.len();
        self.dead.extend(dead.iter().copied());
        self.dead.len() > before
    }

    /// Merge a peer's full `(base, dead)` view. Views from a later heal
    /// (higher base) win wholesale; same-base views union their dead
    /// sets; earlier bases are stale and ignored. Returns `true` if our
    /// view changed (and the generation advanced).
    pub fn merge_full(&mut self, base: u64, dead: &BTreeSet<RankId>) -> bool {
        use std::cmp::Ordering;
        match base.cmp(&self.base_gen) {
            Ordering::Less => false,
            Ordering::Equal => self.merge(dead),
            Ordering::Greater => {
                self.base_gen = base;
                self.dead = dead.clone();
                true
            }
        }
    }

    /// Whether the live component this view describes holds a strict
    /// majority of the *original* rank set — the quorum rule gating
    /// protocol restarts and commits under partitions. A 50/50 split
    /// leaves both components without quorum.
    pub fn has_quorum(&self) -> bool {
        self.num_live() * 2 > self.num_ranks
    }

    /// Heal: re-admit `rejoined` ranks and fence off every generation
    /// derived from the current base by bumping the base past the
    /// largest dead set any same-base view could hold. Only
    /// quorum-holding components heal (the caller enforces this), so two
    /// components can never mint competing bases.
    pub fn heal(&mut self, rejoined: &BTreeSet<RankId>) {
        self.base_gen += self.num_ranks as u64 + 1;
        for r in rejoined {
            self.dead.remove(r);
        }
    }

    /// First epoch of this view's epoch range (see module docs).
    pub fn epoch_base(&self) -> u64 {
        self.generation() * VIEW_EPOCH_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_view_has_everyone_live() {
        let v = View::new(4);
        assert_eq!(v.generation(), 0);
        assert_eq!(v.epoch_base(), 0);
        assert_eq!(v.num_live(), 4);
        assert_eq!(v.live_ranks().len(), 4);
        assert!(v.is_live(RankId::new(3)));
    }

    #[test]
    fn declaring_dead_advances_the_generation_once() {
        let mut v = View::new(4);
        assert!(v.declare_dead(RankId::new(2)));
        assert!(!v.declare_dead(RankId::new(2)), "not news twice");
        assert_eq!(v.generation(), 1);
        assert_eq!(v.epoch_base(), VIEW_EPOCH_STRIDE);
        assert!(!v.is_live(RankId::new(2)));
        assert_eq!(
            v.live_ranks(),
            vec![RankId::new(0), RankId::new(1), RankId::new(3)]
        );
    }

    #[test]
    fn merge_is_a_union_and_reports_growth() {
        let mut a = View::new(5);
        a.declare_dead(RankId::new(1));
        let mut b = View::new(5);
        b.declare_dead(RankId::new(3));
        assert!(a.merge(b.dead()));
        assert_eq!(a.generation(), 2);
        assert!(!a.merge(b.dead()), "idempotent");
        // Merging the larger view into the smaller converges them.
        assert!(b.merge(a.dead()));
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_merges_converge_regardless_of_order() {
        let sets: Vec<BTreeSet<RankId>> = vec![
            [RankId::new(1)].into_iter().collect(),
            [RankId::new(4), RankId::new(2)].into_iter().collect(),
            [RankId::new(1), RankId::new(5)].into_iter().collect(),
        ];
        let mut fwd = View::new(8);
        for s in &sets {
            fwd.merge(s);
        }
        let mut rev = View::new(8);
        for s in sets.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.generation(), 4);
    }

    #[test]
    fn quorum_is_a_strict_majority_of_the_original_ranks() {
        let mut v = View::new(8);
        assert!(v.has_quorum());
        for r in 0..3 {
            v.declare_dead(RankId::new(r));
        }
        assert!(v.has_quorum(), "5 of 8 is a majority");
        v.declare_dead(RankId::new(3));
        assert!(!v.has_quorum(), "a 50/50 split has no quorum");
        v.declare_dead(RankId::new(4));
        assert!(!v.has_quorum());
    }

    #[test]
    fn heal_readmits_and_jumps_generations() {
        let mut v = View::new(8);
        for r in [1u32, 2, 3] {
            v.declare_dead(RankId::new(r));
        }
        let pre_gen = v.generation();
        assert_eq!(pre_gen, 3);
        let rejoined: BTreeSet<RankId> = [RankId::new(1), RankId::new(2)].into_iter().collect();
        v.heal(&rejoined);
        assert!(v.is_live(RankId::new(1)));
        assert!(!v.is_live(RankId::new(3)));
        assert_eq!(v.base_gen(), 9);
        assert_eq!(v.generation(), 10);
        // Any same-base view's generation is at most base + num_ranks,
        // so the healed generation strictly dominates all of them.
        assert!(v.generation() > pre_gen + 8 - 3);
    }

    #[test]
    fn merge_full_orders_by_base_then_unions() {
        let mut a = View::new(6);
        a.declare_dead(RankId::new(5));
        // Same base: union.
        let dead1: BTreeSet<RankId> = [RankId::new(4)].into_iter().collect();
        assert!(a.merge_full(0, &dead1));
        assert_eq!(a.generation(), 2);
        // Lower base: ignored.
        let mut healed = View::new(6);
        healed.declare_dead(RankId::new(1));
        healed.heal(&[RankId::new(1)].into_iter().collect());
        assert!(!healed.merge_full(0, a.dead()));
        assert!(healed.is_live(RankId::new(4)));
        // Higher base: adopted wholesale.
        assert!(a.merge_full(healed.base_gen(), healed.dead()));
        assert_eq!(a, healed);
        // Idempotent.
        assert!(!a.merge_full(healed.base_gen(), healed.dead()));
    }
}
