//! Epoch-stamped membership views for crash-stop fault tolerance.
//!
//! A [`View`] is a monotone record of which ranks have been declared
//! dead. Because declarations only ever *add* ranks (crash-stop: the
//! dead stay dead), the dead set is a join-semilattice under union and
//! every rank converges to the same view by gossiping and merging dead
//! sets — no agreement protocol is needed.
//!
//! The **generation** of a view is the size of its dead set. Protocol
//! machinery uses the generation to fence cross-view traffic: the LB
//! engine offsets its termination-detection epochs by
//! `generation × VIEW_EPOCH_STRIDE` and stamps its collective slots with
//! the generation, so any message produced under an older view is
//! recognizably stale and dropped (see `lb::engine`). Two ranks can
//! transiently hold different dead sets of the same size, but only when
//! *different* ranks died concurrently — and then further view changes
//! follow until the union is reached, with a full protocol restart on
//! every growth, so the fencing remains conservative.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tempered_core::ids::RankId;

/// Spacing between the epoch ranges of consecutive view generations.
/// Each LB protocol run uses epochs well below this bound, so offsetting
/// by `generation × VIEW_EPOCH_STRIDE` guarantees epoch ranges of
/// different views never collide.
pub const VIEW_EPOCH_STRIDE: u64 = 1 << 32;

/// A membership view: the full rank set minus the ranks declared dead.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    num_ranks: usize,
    dead: BTreeSet<RankId>,
}

impl View {
    /// The initial view: everyone alive.
    pub fn new(num_ranks: usize) -> Self {
        View {
            num_ranks,
            dead: BTreeSet::new(),
        }
    }

    /// Total ranks in the system (live + dead).
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// View generation: grows with every declared death.
    pub fn generation(&self) -> u64 {
        self.dead.len() as u64
    }

    /// Whether `rank` is still considered alive.
    pub fn is_live(&self, rank: RankId) -> bool {
        !self.dead.contains(&rank)
    }

    /// The set of ranks declared dead.
    pub fn dead(&self) -> &BTreeSet<RankId> {
        &self.dead
    }

    /// Number of surviving ranks.
    pub fn num_live(&self) -> usize {
        self.num_ranks - self.dead.len()
    }

    /// Surviving ranks in ascending order.
    pub fn live_ranks(&self) -> Vec<RankId> {
        (0..self.num_ranks)
            .map(RankId::from)
            .filter(|r| self.is_live(*r))
            .collect()
    }

    /// Declare a single rank dead. Returns `true` if the view grew
    /// (i.e. this was news and the generation advanced).
    pub fn declare_dead(&mut self, rank: RankId) -> bool {
        debug_assert!(rank.as_usize() < self.num_ranks, "unknown rank {rank}");
        self.dead.insert(rank)
    }

    /// Merge a peer's dead set (view-change propagation). Returns `true`
    /// if the union grew our view.
    pub fn merge(&mut self, dead: &BTreeSet<RankId>) -> bool {
        let before = self.dead.len();
        self.dead.extend(dead.iter().copied());
        self.dead.len() > before
    }

    /// First epoch of this view's epoch range (see module docs).
    pub fn epoch_base(&self) -> u64 {
        self.generation() * VIEW_EPOCH_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_view_has_everyone_live() {
        let v = View::new(4);
        assert_eq!(v.generation(), 0);
        assert_eq!(v.epoch_base(), 0);
        assert_eq!(v.num_live(), 4);
        assert_eq!(v.live_ranks().len(), 4);
        assert!(v.is_live(RankId::new(3)));
    }

    #[test]
    fn declaring_dead_advances_the_generation_once() {
        let mut v = View::new(4);
        assert!(v.declare_dead(RankId::new(2)));
        assert!(!v.declare_dead(RankId::new(2)), "not news twice");
        assert_eq!(v.generation(), 1);
        assert_eq!(v.epoch_base(), VIEW_EPOCH_STRIDE);
        assert!(!v.is_live(RankId::new(2)));
        assert_eq!(
            v.live_ranks(),
            vec![RankId::new(0), RankId::new(1), RankId::new(3)]
        );
    }

    #[test]
    fn merge_is_a_union_and_reports_growth() {
        let mut a = View::new(5);
        a.declare_dead(RankId::new(1));
        let mut b = View::new(5);
        b.declare_dead(RankId::new(3));
        assert!(a.merge(b.dead()));
        assert_eq!(a.generation(), 2);
        assert!(!a.merge(b.dead()), "idempotent");
        // Merging the larger view into the smaller converges them.
        assert!(b.merge(a.dead()));
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_merges_converge_regardless_of_order() {
        let sets: Vec<BTreeSet<RankId>> = vec![
            [RankId::new(1)].into_iter().collect(),
            [RankId::new(4), RankId::new(2)].into_iter().collect(),
            [RankId::new(1), RankId::new(5)].into_iter().collect(),
        ];
        let mut fwd = View::new(8);
        for s in &sets {
            fwd.merge(s);
        }
        let mut rev = View::new(8);
        for s in sets.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.generation(), 4);
    }
}
