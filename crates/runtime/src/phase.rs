//! Phase demarcation and load instrumentation.
//!
//! §III-B: the runtime lets the application demarcate *phases* (timesteps)
//! and instruments per-task execution time within each phase. Balancers
//! consume the previous phase's measurements under the *principle of
//! persistence* — past load predicts future load. This module provides
//! the bookkeeping: per-task load recording, phase history, and a
//! quantitative persistence check applications can use to decide whether
//! phase-level balancing is applicable at all (§III-B notes that when
//! persistence fails, balancing should move within a phase instead).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tempered_core::ids::TaskId;
use tempered_core::load::Load;

/// Instrumented loads for one completed phase.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index (application timestep).
    pub phase: u64,
    /// Measured per-task loads.
    pub loads: Vec<(TaskId, Load)>,
}

impl PhaseRecord {
    /// Total load of the phase.
    pub fn total(&self) -> Load {
        self.loads.iter().map(|(_, l)| *l).sum()
    }
}

/// Rolling per-task instrumentation across phases.
#[derive(Clone, Debug, Default)]
pub struct PhaseTracker {
    current_phase: u64,
    current: HashMap<TaskId, Load>,
    history: Vec<PhaseRecord>,
    /// Cap on retained history (old phases are discarded FIFO).
    pub max_history: usize,
}

impl PhaseTracker {
    /// New tracker starting at phase 0, retaining `max_history` phases.
    pub fn new(max_history: usize) -> Self {
        PhaseTracker {
            max_history: max_history.max(1),
            ..Default::default()
        }
    }

    /// Phase currently being instrumented.
    pub fn current_phase(&self) -> u64 {
        self.current_phase
    }

    /// Accumulate `load` against `task` in the current phase. Multiple
    /// records per task per phase sum (a task may run several kernels).
    pub fn record(&mut self, task: TaskId, load: Load) {
        *self.current.entry(task).or_insert(Load::ZERO) += load;
    }

    /// Close the current phase, returning its record, and begin the next.
    pub fn end_phase(&mut self) -> PhaseRecord {
        let mut loads: Vec<(TaskId, Load)> = self.current.drain().collect();
        // Deterministic order regardless of hash state.
        loads.sort_by_key(|(id, _)| *id);
        let record = PhaseRecord {
            phase: self.current_phase,
            loads,
        };
        self.history.push(record.clone());
        if self.history.len() > self.max_history {
            self.history.remove(0);
        }
        self.current_phase += 1;
        record
    }

    /// The most recently completed phase, if any.
    pub fn last_phase(&self) -> Option<&PhaseRecord> {
        self.history.last()
    }

    /// Retained history, oldest first.
    pub fn history(&self) -> &[PhaseRecord] {
        &self.history
    }

    /// The persistence coefficient between the last two completed phases:
    /// the Pearson correlation of per-task loads. Values near `1.0` mean
    /// the previous phase is a good predictor (the balancer's operating
    /// assumption); `None` with fewer than two phases or degenerate
    /// variance.
    pub fn persistence(&self) -> Option<f64> {
        let n = self.history.len();
        if n < 2 {
            return None;
        }
        correlation(&self.history[n - 2], &self.history[n - 1])
    }
}

/// Pearson correlation of per-task loads across two phases (tasks present
/// in both phases only).
pub fn correlation(a: &PhaseRecord, b: &PhaseRecord) -> Option<f64> {
    let bmap: HashMap<TaskId, f64> = b.loads.iter().map(|&(t, l)| (t, l.get())).collect();
    let paired: Vec<(f64, f64)> = a
        .loads
        .iter()
        .filter_map(|&(t, l)| bmap.get(&t).map(|&lb| (l.get(), lb)))
        .collect();
    if paired.len() < 2 {
        return None;
    }
    let n = paired.len() as f64;
    let (sx, sy): (f64, f64) = paired
        .iter()
        .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (mx, my) = (sx / n, sy / n);
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for &(x, y) in &paired {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tracker: &mut PhaseTracker, loads: &[f64]) -> PhaseRecord {
        for (i, &l) in loads.iter().enumerate() {
            tracker.record(TaskId::from(i), Load::new(l));
        }
        tracker.end_phase()
    }

    #[test]
    fn phases_advance_and_accumulate() {
        let mut t = PhaseTracker::new(10);
        t.record(TaskId::new(0), Load::new(1.0));
        t.record(TaskId::new(0), Load::new(0.5));
        t.record(TaskId::new(1), Load::new(2.0));
        let rec = t.end_phase();
        assert_eq!(rec.phase, 0);
        assert_eq!(rec.loads.len(), 2);
        assert_eq!(rec.loads[0], (TaskId::new(0), Load::new(1.5)));
        assert_eq!(rec.total(), Load::new(3.5));
        assert_eq!(t.current_phase(), 1);
    }

    #[test]
    fn history_is_bounded() {
        let mut t = PhaseTracker::new(2);
        for _ in 0..5 {
            record(&mut t, &[1.0]);
        }
        assert_eq!(t.history().len(), 2);
        assert_eq!(t.last_phase().unwrap().phase, 4);
        assert_eq!(t.history()[0].phase, 3);
    }

    #[test]
    fn perfect_persistence() {
        let mut t = PhaseTracker::new(5);
        record(&mut t, &[1.0, 2.0, 3.0]);
        record(&mut t, &[1.0, 2.0, 3.0]);
        let p = t.persistence().unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_persistence() {
        let mut t = PhaseTracker::new(5);
        record(&mut t, &[1.0, 2.0, 3.0]);
        record(&mut t, &[3.0, 2.0, 1.0]);
        let p = t.persistence().unwrap();
        assert!((p + 1.0).abs() < 1e-12);
    }

    #[test]
    fn persistence_undefined_cases() {
        let mut t = PhaseTracker::new(5);
        assert!(t.persistence().is_none());
        record(&mut t, &[1.0, 2.0]);
        assert!(t.persistence().is_none());
        // Constant loads → zero variance → undefined.
        record(&mut t, &[5.0, 5.0]);
        record(&mut t, &[5.0, 5.0]);
        assert!(t.persistence().is_none());
    }

    #[test]
    fn correlation_ignores_unmatched_tasks() {
        let a = PhaseRecord {
            phase: 0,
            loads: vec![
                (TaskId::new(0), Load::new(1.0)),
                (TaskId::new(1), Load::new(2.0)),
                (TaskId::new(9), Load::new(100.0)),
            ],
        };
        let b = PhaseRecord {
            phase: 1,
            loads: vec![
                (TaskId::new(0), Load::new(2.0)),
                (TaskId::new(1), Load::new(4.0)),
                (TaskId::new(7), Load::new(50.0)),
            ],
        };
        let c = correlation(&a, &b).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }
}
