//! Tree-based collective building blocks: reduce and broadcast.
//!
//! The protocol stack needs two collectives: the initial allreduce of
//! `(ℓ_total, ℓ_max)` that tells every rank the average and maximum load
//! (§IV-B: "ranks perform an all-reduce to collect constant-size
//! statistical data"), and the per-iteration evaluation reduce of the
//! proposed maximum load. Both are built from a binary spanning tree:
//! reduce up to the root, broadcast back down — `O(log P)` depth,
//! `2(P−1)` messages, mirroring an MPI implementation's cost shape.
//!
//! The pieces here are *passive components*: they hold partial state and
//! tell the embedding protocol what to send; all actual communication
//! goes through the protocol's own message type.

use serde::{Deserialize, Serialize};
use tempered_core::ids::RankId;

/// Binary spanning tree over `0..n`, rooted at `root`.
///
/// Ranks are rotated so any root works: the tree over *relative* ids is
/// the standard implicit binary heap layout.
#[derive(Clone, Copy, Debug)]
pub struct Tree {
    /// Number of ranks.
    pub num_ranks: usize,
    /// Root rank.
    pub root: RankId,
}

impl Tree {
    /// Construct a tree over `num_ranks` ranks rooted at `root`.
    pub fn new(num_ranks: usize, root: RankId) -> Self {
        assert!(root.as_usize() < num_ranks, "root out of range");
        Tree { num_ranks, root }
    }

    fn rel_of(&self, r: RankId) -> usize {
        (r.as_usize() + self.num_ranks - self.root.as_usize()) % self.num_ranks
    }

    fn rank_of(&self, rel: usize) -> RankId {
        RankId::from((rel + self.root.as_usize()) % self.num_ranks)
    }

    /// Parent of `r`, or `None` for the root.
    pub fn parent(&self, r: RankId) -> Option<RankId> {
        let rel = self.rel_of(r);
        if rel == 0 {
            None
        } else {
            Some(self.rank_of((rel - 1) / 2))
        }
    }

    /// Children of `r` (zero, one, or two).
    pub fn children(&self, r: RankId) -> Vec<RankId> {
        let rel = self.rel_of(r);
        let mut out = Vec::with_capacity(2);
        for c in [2 * rel + 1, 2 * rel + 2] {
            if c < self.num_ranks {
                out.push(self.rank_of(c));
            }
        }
        out
    }

    /// Depth of the tree (edges on the longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        if self.num_ranks <= 1 {
            0
        } else {
            (usize::BITS - self.num_ranks.leading_zeros()) as usize - 1
        }
    }
}

/// The constant-size statistic reduced before load balancing:
/// `(Σ load, max load, rank count)` — enough to derive `ℓ_ave`, `ℓ_max`,
/// and the imbalance `I`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct LoadSummary {
    /// Sum of per-rank loads.
    pub total: f64,
    /// Maximum per-rank load.
    pub max: f64,
    /// Number of contributing ranks.
    pub count: u64,
}

impl LoadSummary {
    /// A single rank's contribution.
    pub fn of(load: f64) -> Self {
        LoadSummary {
            total: load,
            max: load,
            count: 1,
        }
    }

    /// Monoid combine.
    pub fn combine(self, other: LoadSummary) -> LoadSummary {
        LoadSummary {
            total: self.total + other.total,
            max: self.max.max(other.max),
            count: self.count + other.count,
        }
    }

    /// Average per-rank load.
    pub fn average(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Imbalance `I = max/ave − 1` (Eq. 1); `0.0` for an empty summary.
    pub fn imbalance(&self) -> f64 {
        let ave = self.average();
        if ave == 0.0 {
            0.0
        } else {
            self.max / ave - 1.0
        }
    }
}

/// Per-rank reduce state for one collective "slot".
///
/// A rank completes when it has its own contribution plus one message per
/// child; the embedding protocol then forwards the partial to the parent,
/// or — at the root — owns the final value.
///
/// Partials are folded in a *canonical* order — own contribution first,
/// then children sorted by rank — regardless of arrival order. Floating
/// point addition is not associative, so arrival-order folding would make
/// the reduced total depend on message timing; the canonical fold keeps
/// the result identical across executors, fault plans, and reorderings.
#[derive(Clone, Debug)]
pub struct ReduceSlot {
    expected_children: usize,
    own: Option<LoadSummary>,
    children: Vec<(RankId, LoadSummary)>,
}

impl ReduceSlot {
    /// New slot for a rank with `expected_children` tree children.
    pub fn new(expected_children: usize) -> Self {
        ReduceSlot {
            expected_children,
            own: None,
            children: Vec::with_capacity(expected_children),
        }
    }

    /// Record this rank's own contribution; returns the completed partial
    /// if the slot is now full.
    pub fn contribute(&mut self, own: LoadSummary) -> Option<LoadSummary> {
        debug_assert!(self.own.is_none(), "double contribution");
        self.own = Some(own);
        self.completed()
    }

    /// Record the partial from child rank `from`; returns the completed
    /// partial if full.
    pub fn on_child(&mut self, from: RankId, partial: LoadSummary) -> Option<LoadSummary> {
        debug_assert!(
            self.children.len() < self.expected_children,
            "more child partials than children"
        );
        self.children.push((from, partial));
        self.completed()
    }

    fn completed(&self) -> Option<LoadSummary> {
        let own = self.own?;
        if self.children.len() != self.expected_children {
            return None;
        }
        let mut sorted = self.children.clone();
        sorted.sort_by_key(|(r, _)| *r);
        Some(sorted.into_iter().fold(own, |acc, (_, p)| acc.combine(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_parent_child_consistency() {
        for n in [1usize, 2, 3, 7, 8, 16, 33, 400] {
            for root in [0usize, n / 2, n - 1] {
                let tree = Tree::new(n, RankId::from(root));
                let mut seen = vec![false; n];
                seen[root] = true;
                for r in 0..n {
                    let rank = RankId::from(r);
                    for c in tree.children(rank) {
                        assert_eq!(tree.parent(c), Some(rank), "n={n} root={root}");
                        assert!(!seen[c.as_usize()], "duplicate child {c}");
                        seen[c.as_usize()] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "tree must span all ranks");
                assert_eq!(tree.parent(RankId::from(root)), None);
            }
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        assert_eq!(Tree::new(1, RankId::new(0)).depth(), 0);
        assert_eq!(Tree::new(2, RankId::new(0)).depth(), 1);
        assert_eq!(Tree::new(8, RankId::new(0)).depth(), 3);
        assert_eq!(Tree::new(400, RankId::new(0)).depth(), 8);
    }

    #[test]
    fn load_summary_combines() {
        let a = LoadSummary::of(2.0);
        let b = LoadSummary::of(6.0);
        let c = a.combine(b);
        assert_eq!(c.total, 8.0);
        assert_eq!(c.max, 6.0);
        assert_eq!(c.count, 2);
        assert_eq!(c.average(), 4.0);
        assert!((c.imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_imbalance_is_zero() {
        assert_eq!(LoadSummary::default().imbalance(), 0.0);
        assert_eq!(LoadSummary::default().average(), 0.0);
    }

    #[test]
    fn reduce_slot_completes_in_any_order() {
        // Children first, then own.
        let mut s = ReduceSlot::new(2);
        assert!(s.on_child(RankId::new(1), LoadSummary::of(1.0)).is_none());
        assert!(s.on_child(RankId::new(2), LoadSummary::of(2.0)).is_none());
        let done = s.contribute(LoadSummary::of(3.0)).unwrap();
        assert_eq!(done.total, 6.0);
        assert_eq!(done.count, 3);

        // Own first, then children.
        let mut s = ReduceSlot::new(2);
        assert!(s.contribute(LoadSummary::of(3.0)).is_none());
        assert!(s.on_child(RankId::new(1), LoadSummary::of(1.0)).is_none());
        let done = s.on_child(RankId::new(2), LoadSummary::of(2.0)).unwrap();
        assert_eq!(done.max, 3.0);
    }

    #[test]
    fn reduce_slot_folds_in_canonical_order() {
        // FP addition is order-sensitive; the slot must fold own-first,
        // children-by-rank, no matter the arrival order.
        let a = LoadSummary::of(0.1);
        let b = LoadSummary::of(0.2);
        let own = LoadSummary::of(0.3);
        let mut s1 = ReduceSlot::new(2);
        s1.on_child(RankId::new(1), a);
        s1.on_child(RankId::new(2), b);
        let r1 = s1.contribute(own).unwrap();
        let mut s2 = ReduceSlot::new(2);
        s2.contribute(own);
        s2.on_child(RankId::new(2), b);
        let r2 = s2.on_child(RankId::new(1), a).unwrap();
        assert_eq!(r1.total.to_bits(), r2.total.to_bits());
        assert_eq!(r1.max.to_bits(), r2.max.to_bits());
        assert_eq!(r1.count, r2.count);
    }

    #[test]
    fn leaf_slot_completes_on_contribution() {
        let mut s = ReduceSlot::new(0);
        let done = s.contribute(LoadSummary::of(5.0)).unwrap();
        assert_eq!(done.total, 5.0);
    }

    #[test]
    fn whole_tree_reduce_sums_everything() {
        // Drive slots manually over a 7-rank tree: leaves → root.
        let n = 7;
        let tree = Tree::new(n, RankId::new(0));
        let mut slots: Vec<ReduceSlot> = (0..n)
            .map(|r| ReduceSlot::new(tree.children(RankId::from(r)).len()))
            .collect();
        // Messages queued as (target, sender, partial).
        let mut inbox: Vec<(usize, usize, LoadSummary)> = Vec::new();
        for (r, slot) in slots.iter_mut().enumerate() {
            if let Some(done) = slot.contribute(LoadSummary::of((r + 1) as f64)) {
                if let Some(p) = tree.parent(RankId::from(r)) {
                    inbox.push((p.as_usize(), r, done));
                }
            }
        }
        let mut root_result = None;
        while let Some((t, from, partial)) = inbox.pop() {
            if let Some(done) = slots[t].on_child(RankId::from(from), partial) {
                match tree.parent(RankId::from(t)) {
                    Some(p) => inbox.push((p.as_usize(), t, done)),
                    None => root_result = Some(done),
                }
            }
        }
        let total = root_result.expect("root must complete");
        assert_eq!(total.total, 28.0); // 1+2+...+7
        assert_eq!(total.max, 7.0);
        assert_eq!(total.count, 7);
    }
}
