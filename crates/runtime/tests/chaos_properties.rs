//! Chaos properties of the hardened LB protocol: under drops,
//! duplication, delay spikes, stragglers and pause windows, the
//! at-least-once delivery layer must terminate the protocol and produce
//! the *same final assignment* as a fault-free run — faults may change
//! timing and wire traffic, never the outcome. A zeroed fault plan must
//! be bit-identical to running with no fault layer at all.

use proptest::prelude::*;
use std::time::Duration;
use tempered_core::distribution::Distribution;
use tempered_core::ids::{RankId, TaskId};
use tempered_core::rng::RngFactory;
use tempered_runtime::fault::{CrashEvent, FaultPlan, FaultStats, PauseWindow};
use tempered_runtime::health::HealthConfig;
use tempered_runtime::lb::{LbProtocolConfig, LbRank};
use tempered_runtime::parallel::{run_parallel_with, ParallelOptions};
use tempered_runtime::reliable::RetryConfig;
use tempered_runtime::sim::NetworkModel;
use tempered_runtime::{run_distributed_lb, run_distributed_lb_with_faults};

fn small_cfg() -> LbProtocolConfig {
    LbProtocolConfig {
        trials: 1,
        iters: 2,
        fanout: 3,
        rounds: 4,
        ..Default::default()
    }
}

/// A retry budget generous enough that, at the drop rates exercised
/// here, the probability of a give-up or a missed stage deadline is
/// negligible (virtual-time backoff is free under the simulator).
fn generous_retry() -> RetryConfig {
    RetryConfig {
        timeout: 200e-6,
        backoff: 1.5,
        max_retries: 30,
        stage_deadline: 30.0,
        ..RetryConfig::default()
    }
}

fn hardened_cfg() -> LbProtocolConfig {
    small_cfg().hardened(generous_retry())
}

/// Canonical view of an assignment: per rank, sorted `(task id, load
/// bits)` pairs. Bit-level equality of two runs' outcomes.
fn assignment(d: &Distribution) -> Vec<Vec<(TaskId, u64)>> {
    d.rank_ids()
        .map(|r| {
            let mut tasks: Vec<(TaskId, u64)> = d
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get().to_bits()))
                .collect();
            tasks.sort();
            tasks
        })
        .collect()
}

fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop::collection::vec(prop::collection::vec(0.05f64..3.0, 0..8), 2..10)
        .prop_map(Distribution::from_loads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Moderate chaos (drops ≤ 0.2, duplication, delay spikes, a
    /// straggler, a pause window): the hardened protocol never degrades
    /// and its final assignment is identical to the fault-free run —
    /// the delivery layer makes faults invisible to the algorithm.
    #[test]
    fn hardened_chaos_matches_fault_free_assignment(
        dist in arb_distribution(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop in 0.0f64..0.2,
        duplicate in 0.0f64..0.3,
    ) {
        let cfg = hardened_cfg();
        let plan = FaultPlan {
            seed: fault_seed,
            drop,
            duplicate,
            delay_spike: 0.1,
            delay_spike_scale: 10.0,
            stragglers: vec![(RankId::new(0), 8.0)],
            pauses: vec![PauseWindow { rank: RankId::new(1), from: 0.0, until: 0.002 }],
            ..FaultPlan::none()
        };
        let clean = run_distributed_lb(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed));
        let chaos = run_distributed_lb_with_faults(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed), plan);

        prop_assert_eq!(chaos.degraded_ranks, 0,
            "generous retry budget must absorb moderate chaos");
        prop_assert_eq!(assignment(&chaos.distribution), assignment(&clean.distribution));
        prop_assert_eq!(chaos.final_imbalance.to_bits(), clean.final_imbalance.to_bits());
        prop_assert_eq!(chaos.tasks_migrated, clean.tasks_migrated);
        prop_assert_eq!(chaos.distribution.num_tasks(), dist.num_tasks());
        // Every injected drop of a protocol message must have been repaired.
        prop_assert!(chaos.reliable.gave_up == 0);
    }

    /// Arbitrary (possibly brutal) fault plans: the hardened protocol
    /// always terminates. If no rank degraded, tasks are conserved and
    /// the outcome still equals the fault-free assignment; degradation,
    /// when it happens, is visible in the result rather than a hang.
    #[test]
    fn random_fault_plans_terminate(
        dist in arb_distribution(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop in 0.0f64..0.5,
        duplicate in 0.0f64..0.5,
        delay_spike in 0.0f64..0.3,
    ) {
        let cfg = hardened_cfg();
        let plan = FaultPlan {
            seed: fault_seed,
            drop,
            duplicate,
            delay_spike,
            delay_spike_scale: 20.0,
            reorder: 0.2,
            reorder_factor: 25.0,
            stragglers: vec![(RankId::new(1), 16.0)],
            pauses: vec![PauseWindow { rank: RankId::new(0), from: 0.001, until: 0.004 }],
            ..FaultPlan::none()
        };
        // run_distributed_lb_with_faults asserts completion internally;
        // reaching this point at all is the termination property.
        let chaos = run_distributed_lb_with_faults(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed), plan);
        prop_assert!(chaos.report.completed);
        if chaos.degraded_ranks == 0 {
            prop_assert_eq!(chaos.distribution.num_tasks(), dist.num_tasks());
            prop_assert!(chaos.distribution.total_load().approx_eq(dist.total_load()));
            chaos.distribution.check_invariants().map_err(TestCaseError::fail)?;
            let clean = run_distributed_lb(
                &dist, cfg, NetworkModel::default(), &RngFactory::new(seed));
            prop_assert_eq!(assignment(&chaos.distribution), assignment(&clean.distribution));
        }
    }

    /// Faults that only *delay* (spikes, stragglers, pauses — nothing
    /// lost or duplicated) preserve the outcome even in legacy
    /// best-effort mode: the canonicalized, epoch-buffered protocol is
    /// timing-independent by construction, not by retransmission.
    #[test]
    fn pure_delay_faults_never_change_the_outcome(
        dist in arb_distribution(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let cfg = small_cfg(); // reliability: None
        let plan = FaultPlan {
            seed: fault_seed,
            delay_spike: 0.3,
            delay_spike_scale: 20.0,
            stragglers: vec![(RankId::new(0), 16.0)],
            pauses: vec![PauseWindow { rank: RankId::new(1), from: 0.0, until: 0.005 }],
            ..FaultPlan::none()
        };
        let clean = run_distributed_lb(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed));
        let slow = run_distributed_lb_with_faults(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed), plan);
        prop_assert_eq!(slow.degraded_ranks, 0);
        prop_assert_eq!(assignment(&slow.distribution), assignment(&clean.distribution));
        prop_assert_eq!(slow.final_imbalance.to_bits(), clean.final_imbalance.to_bits());
        // Same outcome, but never faster: delays only ever add latency.
        // (Wire counts are NOT compared — idle waiting circulates extra
        // termination-detection waves, so control traffic is timing-
        // dependent even though the committed assignment is not.)
        prop_assert!(slow.report.finish_time >= clean.report.finish_time);
    }

    /// [`FaultStats::merge`] is commutative: per-worker counters can be
    /// folded in any order.
    #[test]
    fn fault_stats_merge_is_commutative(a in arb_fault_stats(), b in arb_fault_stats()) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// [`FaultStats::merge`] is associative: folding worker counters in
    /// any grouping gives the same totals.
    #[test]
    fn fault_stats_merge_is_associative(
        a in arb_fault_stats(),
        b in arb_fault_stats(),
        c in arb_fault_stats(),
    ) {
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}

fn arb_fault_stats() -> impl Strategy<Value = FaultStats> {
    // u32 counters so triple sums cannot overflow the u64 fields.
    prop::collection::vec(any::<u32>(), 11).prop_map(|v| FaultStats {
        faultable: v[0] as u64,
        dropped: v[1] as u64,
        duplicated: v[2] as u64,
        spiked: v[3] as u64,
        reordered: v[4] as u64,
        straggled: v[5] as u64,
        paused: v[6] as u64,
        crash_dropped: v[7] as u64,
        link_cut: v[8] as u64,
        link_delayed: v[9] as u64,
        corrupted: v[10] as u64,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random crash plans against the crash-tolerant protocol: up to a
    /// quarter of the ranks die fatally at arbitrary times (before,
    /// during, or after the pass), and the run must always terminate —
    /// never hang — and do so bit-identically across reruns of the same
    /// seed.
    #[test]
    fn random_crash_plans_terminate_deterministically(
        seed in any::<u64>(),
        deaths in prop::collection::vec(1usize..12, 3),
        times in prop::collection::vec(1e-5f64..5e-3, 3),
    ) {
        let dist = concentrated(12, 2, 15);
        let cfg = small_cfg()
            .hardened(generous_retry())
            .crash_tolerant(HealthConfig::default());
        let deaths: std::collections::BTreeSet<usize> = deaths.into_iter().collect();
        let crashes: Vec<CrashEvent> = deaths
            .iter()
            .zip(&times)
            .map(|(&r, &t)| CrashEvent::fatal(RankId::from(r), t))
            .collect();
        let plan = FaultPlan { crashes, ..FaultPlan::none() };
        let run = || run_distributed_lb_with_faults(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed), plan.clone());
        let a = run();
        // No more tasks than went in (corpse tasks may be lost; nothing
        // is ever duplicated into the reported distribution).
        prop_assert!(a.distribution.num_tasks() <= dist.num_tasks());
        a.distribution.check_invariants().map_err(TestCaseError::fail)?;
        let b = run();
        prop_assert_eq!(assignment(&a.distribution), assignment(&b.distribution));
        prop_assert_eq!(a.report.events_delivered, b.report.events_delivered);
        prop_assert_eq!(a.report.finish_time.to_bits(), b.report.finish_time.to_bits());
        prop_assert_eq!(a.degraded_ranks, b.degraded_ranks);
    }
}

fn concentrated(num_ranks: usize, hot: usize, tasks_per_hot: usize) -> Distribution {
    let per_rank: Vec<Vec<f64>> = (0..num_ranks)
        .map(|r| {
            if r < hot {
                vec![1.0; tasks_per_hot]
            } else {
                vec![]
            }
        })
        .collect();
    Distribution::from_loads(per_rank)
}

/// A zeroed fault plan (even one with a nonzero seed and unity
/// stragglers) must be bit-identical to running with no fault layer at
/// all — in legacy and in hardened mode.
#[test]
fn zeroed_plan_is_bit_identical_to_no_plan() {
    let dist = concentrated(16, 2, 20);
    let zeroed = FaultPlan {
        seed: 0xDEAD_BEEF,
        stragglers: vec![(RankId::new(2), 1.0)],
        ..FaultPlan::none()
    };
    assert!(zeroed.is_zero());
    for cfg in [small_cfg(), hardened_cfg()] {
        let plain = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(11));
        let planned = run_distributed_lb_with_faults(
            &dist,
            cfg,
            NetworkModel::default(),
            &RngFactory::new(11),
            zeroed.clone(),
        );
        assert_eq!(
            planned.report.events_delivered,
            plain.report.events_delivered
        );
        assert_eq!(
            planned.report.finish_time.to_bits(),
            plain.report.finish_time.to_bits()
        );
        assert_eq!(
            planned.report.network.messages,
            plain.report.network.messages
        );
        assert_eq!(planned.report.network.bytes, plain.report.network.bytes);
        assert_eq!(
            planned.final_imbalance.to_bits(),
            plain.final_imbalance.to_bits()
        );
        assert_eq!(
            assignment(&planned.distribution),
            assignment(&plain.distribution)
        );
        assert_eq!(planned.report.faults.faultable, 0);
    }
}

/// Reliability framing (acks, sequence numbers) must not perturb the
/// algorithm: fault-free, the hardened protocol commits exactly the
/// assignment of the legacy best-effort protocol.
#[test]
fn hardening_is_transparent_when_fault_free() {
    let dist = concentrated(16, 2, 20);
    let legacy = run_distributed_lb(
        &dist,
        small_cfg(),
        NetworkModel::default(),
        &RngFactory::new(23),
    );
    let hardened = run_distributed_lb(
        &dist,
        hardened_cfg(),
        NetworkModel::default(),
        &RngFactory::new(23),
    );
    assert_eq!(hardened.degraded_ranks, 0);
    assert_eq!(
        assignment(&hardened.distribution),
        assignment(&legacy.distribution)
    );
    assert_eq!(
        hardened.final_imbalance.to_bits(),
        legacy.final_imbalance.to_bits()
    );
    assert_eq!(hardened.tasks_migrated, legacy.tasks_migrated);
    // The framing is visible only as extra wire traffic (acks).
    assert!(hardened.report.network.messages > legacy.report.network.messages);
    assert_eq!(hardened.reliable.sent, hardened.reliable.acked);
    assert_eq!(hardened.reliable.retransmitted, 0);
}

/// Distributed GrapevineLB — the original single-trial, single-iteration
/// protocol — through the same engine/transport/driver stack: fault-free
/// replay is bit-deterministic, and moderate chaos under the hardened
/// transport commits the identical assignment.
#[test]
fn distributed_grapevine_converges_deterministically_under_chaos() {
    let dist = concentrated(12, 2, 18);
    let cfg = LbProtocolConfig::grapevine().hardened(generous_retry());
    let a = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(7));
    let b = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(7));
    assert_eq!(assignment(&a.distribution), assignment(&b.distribution));
    assert_eq!(a.final_imbalance.to_bits(), b.final_imbalance.to_bits());
    assert_eq!(
        a.report.finish_time.to_bits(),
        b.report.finish_time.to_bits()
    );
    assert_eq!(a.degraded_ranks, 0);
    assert!(
        a.final_imbalance < a.initial_imbalance,
        "one grapevine iteration must improve the concentrated imbalance"
    );
    assert!(a.tasks_migrated > 0);

    let plan = FaultPlan {
        seed: 77,
        drop: 0.15,
        duplicate: 0.2,
        delay_spike: 0.1,
        delay_spike_scale: 8.0,
        stragglers: vec![(RankId::new(1), 4.0)],
        ..FaultPlan::none()
    };
    let chaos = run_distributed_lb_with_faults(
        &dist,
        cfg,
        NetworkModel::default(),
        &RngFactory::new(7),
        plan,
    );
    assert_eq!(chaos.degraded_ranks, 0);
    assert_eq!(
        assignment(&chaos.distribution),
        assignment(&a.distribution),
        "faults may change timing and wire traffic, never the outcome"
    );
    assert_eq!(chaos.final_imbalance.to_bits(), a.final_imbalance.to_bits());
    assert!(chaos.report.faults.dropped > 0);
}

/// Total blackout: every rank exhausts its budget, degrades, and
/// reverts to its input tasks — graceful degradation, not a hang and
/// not a corrupted assignment.
#[test]
fn blackout_degrades_every_rank_and_reverts_to_input() {
    let dist = concentrated(8, 2, 10);
    let cfg = small_cfg().hardened(RetryConfig {
        timeout: 100e-6,
        backoff: 2.0,
        max_retries: 4,
        stage_deadline: 0.01,
        ..RetryConfig::default()
    });
    let plan = FaultPlan {
        drop: 1.0,
        ..FaultPlan::none()
    };
    let out = run_distributed_lb_with_faults(
        &dist,
        cfg,
        NetworkModel::default(),
        &RngFactory::new(3),
        plan,
    );
    assert!(
        out.report.completed,
        "blackout must end in degradation, not a hang"
    );
    assert_eq!(out.degraded_ranks, dist.num_ranks());
    assert_eq!(out.tasks_migrated, 0);
    assert_eq!(
        assignment(&out.distribution),
        assignment(&dist),
        "every degraded rank must keep exactly its input tasks"
    );
}

/// The hardened protocol under faults on the *threaded* executor:
/// completes under real concurrency, and (absent degradation) lands on
/// the same assignment as the fault-free discrete-event run — the
/// cross-executor determinism the chaos harness relies on.
#[test]
fn parallel_executor_converges_under_faults() {
    let dist = concentrated(8, 1, 16);
    // Wall-clock retry budget: milliseconds, not virtual seconds.
    let cfg = small_cfg().hardened(RetryConfig {
        timeout: 2e-3,
        backoff: 2.0,
        max_retries: 12,
        stage_deadline: 10.0,
        ..RetryConfig::default()
    });
    let plan = FaultPlan {
        seed: 9,
        drop: 0.1,
        duplicate: 0.1,
        stragglers: vec![(RankId::new(3), 2.0)],
        ..FaultPlan::none()
    };
    let ranks: Vec<LbRank> = dist
        .rank_ids()
        .map(|r| {
            let tasks: Vec<(TaskId, f64)> = dist
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get()))
                .collect();
            LbRank::new(r, dist.num_ranks(), tasks, cfg, RngFactory::new(41))
        })
        .collect();
    let report = run_parallel_with(
        ranks,
        4,
        Duration::from_secs(30),
        ParallelOptions {
            fault_plan: plan,
            ..Default::default()
        },
    );
    assert!(
        report.completed,
        "hardened protocol must terminate under threads + faults"
    );
    assert!(
        report.faults.dropped > 0,
        "the plan must actually have injected drops"
    );
    if report.ranks.iter().all(|r| !r.degraded()) {
        let total: usize = report.ranks.iter().map(|r| r.final_tasks().len()).sum();
        assert_eq!(total, dist.num_tasks());
        let clean = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(41));
        for (p, r) in report.ranks.iter().enumerate() {
            let mut mine: Vec<TaskId> = r.final_tasks().iter().map(|t| t.id).collect();
            mine.sort();
            let mut theirs: Vec<TaskId> = clean
                .distribution
                .tasks_on(RankId::from(p))
                .iter()
                .map(|t| t.id)
                .collect();
            theirs.sort();
            assert_eq!(
                mine, theirs,
                "rank {p} diverged from the fault-free assignment"
            );
        }
    }
}
