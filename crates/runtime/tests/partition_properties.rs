//! Partition-tolerance properties of the quorum-gated LB protocol:
//! under *any* bipartition of the rank set, at most one component may
//! commit a rebalanced placement (split-brain prevention); after a heal
//! every rank is re-admitted and the run still terminates with tasks
//! conserved; and the whole machinery — parks, knocks, heals included —
//! is bit-deterministic for a fixed seed and plan. Membership views
//! themselves must converge under arbitrary delivery orders and
//! duplicated floods (the join rule is order-insensitive), and a
//! transient link cut that the retry budget can span must be invisible
//! to the committed assignment.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tempered_core::distribution::Distribution;
use tempered_core::ids::{RankId, TaskId};
use tempered_core::rng::RngFactory;
use tempered_runtime::fault::{FaultPlan, LinkFault, LinkFaultKind, PartitionWindow};
use tempered_runtime::health::HealthConfig;
use tempered_runtime::lb::{LbProtocolConfig, PartitionConfig};
use tempered_runtime::membership::View;
use tempered_runtime::reliable::RetryConfig;
use tempered_runtime::sim::NetworkModel;
use tempered_runtime::{run_distributed_lb, run_distributed_lb_with_faults};

const RANKS: usize = 12;

fn partition_cfg() -> LbProtocolConfig {
    LbProtocolConfig {
        trials: 1,
        iters: 2,
        fanout: 3,
        rounds: 4,
        ..Default::default()
    }
    .hardened(RetryConfig::default())
    .crash_tolerant(HealthConfig::default())
    .partition_tolerant(PartitionConfig {
        park_deadline: 0.05,
    })
}

/// Hot load on the first three ranks so both components of most
/// bipartitions have something to rebalance.
fn workload() -> Distribution {
    let per_rank: Vec<Vec<f64>> = (0..RANKS)
        .map(|r| if r < 3 { vec![1.0; 12] } else { vec![] })
        .collect();
    Distribution::from_loads(per_rank)
}

/// A nonempty, proper subset of the rank set: build from 1..RANKS raw
/// draws, so after dedup the side holds between 1 and RANKS-1 ranks.
/// (The vendored proptest ships only `vec`; sets are derived.)
fn arb_side() -> impl Strategy<Value = BTreeSet<u32>> {
    prop::collection::vec(0u32..RANKS as u32, 1..RANKS).prop_map(|v| v.into_iter().collect())
}

fn bipartition(side: &BTreeSet<u32>, start: f64, end: Option<f64>) -> FaultPlan {
    FaultPlan {
        partitions: vec![PartitionWindow {
            side: side.iter().map(|&r| RankId::new(r)).collect(),
            start,
            end,
        }],
        ..FaultPlan::none()
    }
}

/// Canonical view of an assignment: per rank, sorted `(task id, load
/// bits)` pairs. Bit-level equality of two runs' outcomes.
fn assignment(d: &Distribution) -> Vec<Vec<(TaskId, u64)>> {
    d.rank_ids()
        .map(|r| {
            let mut tasks: Vec<(TaskId, u64)> = d
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get().to_bits()))
                .collect();
            tasks.sort();
            tasks
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Split-brain prevention over *arbitrary* bipartitions: the
    /// minority component (having lost quorum) parks and keeps exactly
    /// its input tasks, so at most one component ever commits a changed
    /// placement; a 50/50 split parks everyone and commits nothing.
    /// Reruns of the same seed and plan are bit-identical throughout.
    #[test]
    fn any_permanent_bipartition_commits_at_most_one_component(
        side in arb_side(),
        seed in any::<u64>(),
    ) {
        let dist = workload();
        let plan = bipartition(&side, 2e-4, None);
        let run = || run_distributed_lb_with_faults(
            &dist, partition_cfg(), NetworkModel::default(),
            &RngFactory::new(seed), plan.clone());
        let a = run();

        prop_assert!(a.report.completed, "every rank must finish");
        prop_assert_eq!(a.degraded_ranks, 0);
        prop_assert_eq!(a.distribution.num_tasks(), dist.num_tasks(),
            "no task may be lost or duplicated across the cut");
        a.distribution.check_invariants().map_err(TestCaseError::fail)?;

        let complement: BTreeSet<u32> = (0..RANKS as u32)
            .filter(|r| !side.contains(r))
            .collect();
        if side.len() == complement.len() {
            // No strict majority anywhere: both components park and the
            // input placement survives untouched.
            prop_assert_eq!(a.parked_ranks, RANKS);
            prop_assert_eq!(a.tasks_migrated, 0);
            prop_assert_eq!(assignment(&a.distribution), assignment(&dist));
        } else {
            let minority = if side.len() < complement.len() { &side } else { &complement };
            prop_assert_eq!(a.parked_ranks, minority.len(),
                "exactly the quorum-less component parks");
            // The parked component moved nothing: every minority rank
            // still holds exactly its input tasks.
            for &r in minority {
                let mut mine: Vec<TaskId> = a.distribution
                    .tasks_on(RankId::new(r)).iter().map(|t| t.id).collect();
                mine.sort();
                let mut input: Vec<TaskId> = dist
                    .tasks_on(RankId::new(r)).iter().map(|t| t.id).collect();
                input.sort();
                prop_assert_eq!(mine, input,
                    "parked rank {} must keep its original placement", r);
            }
        }

        // Same seed, same plan: bit-identical outcome, parks included.
        let b = run();
        prop_assert_eq!(assignment(&a.distribution), assignment(&b.distribution));
        prop_assert_eq!(a.report.events_delivered, b.report.events_delivered);
        prop_assert_eq!(a.report.finish_time.to_bits(), b.report.finish_time.to_bits());
        prop_assert_eq!(a.parked_ranks, b.parked_ranks);
        prop_assert_eq!(a.tasks_migrated, b.tasks_migrated);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Healed bipartitions re-admit every rank: once the window closes,
    /// parked ranks knock, the quorum leader heals them under a fenced
    /// view, and the run finishes with nobody parked and all tasks
    /// conserved. (A 50/50 split is the one shape with no quorum leader
    /// to heal anyone: if both sides parked before the window closed,
    /// everyone finishes read-only on the input placement instead —
    /// still agreement, never split-brain.)
    #[test]
    fn healed_bipartition_reunites_every_rank(
        side in arb_side(),
        seed in any::<u64>(),
        heal_at in 1e-3f64..0.03,
    ) {
        let dist = workload();
        let out = run_distributed_lb_with_faults(
            &dist, partition_cfg(), NetworkModel::default(),
            &RngFactory::new(seed), bipartition(&side, 2e-4, Some(heal_at)));

        prop_assert!(out.report.completed);
        prop_assert_eq!(out.degraded_ranks, 0);
        prop_assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
        out.distribution.check_invariants().map_err(TestCaseError::fail)?;
        if side.len() * 2 == RANKS {
            prop_assert!(out.parked_ranks == 0 || out.parked_ranks == RANKS);
            if out.parked_ranks == RANKS {
                prop_assert_eq!(out.tasks_migrated, 0);
                prop_assert_eq!(assignment(&out.distribution), assignment(&dist));
            }
        } else {
            prop_assert_eq!(out.parked_ranks, 0, "the heal re-admits everyone");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A transient directed link cut that the retry budget can span is
    /// invisible to the outcome: nothing degrades, nothing parks, and
    /// the committed assignment equals the fault-free run's.
    #[test]
    fn transient_link_cut_is_absorbed_by_retransmission(
        seed in any::<u64>(),
        src in 0u32..RANKS as u32,
        dst in 0u32..RANKS as u32,
        cut_len in 1e-4f64..6e-4,
    ) {
        prop_assume!(src != dst);
        let dist = workload();
        let cfg = partition_cfg();
        let plan = FaultPlan {
            links: vec![LinkFault {
                src: vec![RankId::new(src)],
                dst: vec![RankId::new(dst)],
                start: 1e-4,
                end: Some(1e-4 + cut_len),
                kind: LinkFaultKind::Cut,
            }],
            ..FaultPlan::none()
        };
        let clean = run_distributed_lb(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed));
        let cut = run_distributed_lb_with_faults(
            &dist, cfg, NetworkModel::default(), &RngFactory::new(seed), plan);

        prop_assert_eq!(cut.degraded_ranks, 0);
        prop_assert_eq!(cut.parked_ranks, 0, "a brief cut must not cost quorum");
        prop_assert_eq!(assignment(&cut.distribution), assignment(&clean.distribution));
        prop_assert_eq!(cut.final_imbalance.to_bits(), clean.final_imbalance.to_bits());
        prop_assert_eq!(cut.tasks_migrated, clean.tasks_migrated);
    }
}

/// Deterministic Fisher–Yates driven by a xorshift stream, so a shuffle
/// order is itself a reproducible function of the proptest input.
fn shuffled<T: Clone>(items: &[T], mut s: u64) -> Vec<T> {
    let mut v: Vec<T> = items.to_vec();
    s |= 1;
    for i in (1..v.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        v.swap(i, (s % (i as u64 + 1)) as usize);
    }
    v
}

fn arb_view_op() -> impl Strategy<Value = (u64, BTreeSet<RankId>)> {
    (
        0u64..40,
        prop::collection::vec(0u32..RANKS as u32, 0..6)
            .prop_map(|v| v.into_iter().map(RankId::new).collect()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// View-flood convergence: [`View::merge_full`] is order-insensitive
    /// and idempotent, so replicas that receive the same set of `(base,
    /// dead)` floods — in any delivery order, with any floods duplicated
    /// by retransmission — converge to the identical view. This is the
    /// property that lets membership gossip ride an unordered,
    /// at-least-once transport with no agreement round.
    #[test]
    fn view_floods_converge_under_any_delivery_order(
        ops in prop::collection::vec(arb_view_op(), 1..12),
        shuffle_seed in any::<u64>(),
        dup_count in 0usize..6,
    ) {
        let mut reference = View::new(RANKS);
        for (base, dead) in &ops {
            reference.merge_full(*base, dead);
        }

        // A reordered replica, with a few floods delivered twice.
        let mut redelivered = ops.clone();
        redelivered.extend(ops.iter().take(dup_count).cloned());
        let mut replica = View::new(RANKS);
        for (base, dead) in shuffled(&redelivered, shuffle_seed) {
            replica.merge_full(base, &dead);
        }

        prop_assert_eq!(&replica, &reference);
        // Re-applying the whole flood set changes nothing (idempotence).
        let snapshot = replica.clone();
        for (base, dead) in &ops {
            replica.merge_full(*base, dead);
        }
        prop_assert_eq!(replica, snapshot);
    }
}
