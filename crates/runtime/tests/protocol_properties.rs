//! Property-based tests of the runtime substrate: termination detection
//! under arbitrary counter states, tree topology invariants, and the full
//! asynchronous LB protocol over randomized distributions.

use proptest::prelude::*;
use std::collections::VecDeque;
use tempered_core::distribution::Distribution;
use tempered_core::ids::RankId;
use tempered_core::rng::RngFactory;
use tempered_runtime::collective::{LoadSummary, Tree};
use tempered_runtime::lb::LbProtocolConfig;
use tempered_runtime::run_distributed_lb;
use tempered_runtime::sim::NetworkModel;
use tempered_runtime::termination::{TdMsg, TerminationDetector};

proptest! {
    /// The spanning tree is a tree for any size and root: every non-root
    /// rank has exactly one parent, parent/child relations agree, and all
    /// ranks are reachable.
    #[test]
    fn tree_is_spanning(n in 1usize..600, root_sel in any::<prop::sample::Index>()) {
        let root = RankId::from(root_sel.index(n));
        let tree = Tree::new(n, root);
        let mut seen = vec![false; n];
        let mut queue = vec![root];
        seen[root.as_usize()] = true;
        while let Some(r) = queue.pop() {
            for c in tree.children(r) {
                prop_assert!(!seen[c.as_usize()], "cycle at {c}");
                prop_assert_eq!(tree.parent(c), Some(r));
                seen[c.as_usize()] = true;
                queue.push(c);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(tree.parent(root), None);
    }

    /// LoadSummary combine is associative and commutative (a reduction
    /// over any tree shape gives the same result).
    #[test]
    fn load_summary_combine_is_monoidal(
        a in 0.0f64..100.0,
        b in 0.0f64..100.0,
        c in 0.0f64..100.0,
    ) {
        let (x, y, z) = (LoadSummary::of(a), LoadSummary::of(b), LoadSummary::of(c));
        let left = x.combine(y).combine(z);
        let right = x.combine(y.combine(z));
        prop_assert!((left.total - right.total).abs() < 1e-9);
        prop_assert_eq!(left.max, right.max);
        prop_assert_eq!(left.count, right.count);
        let swapped = y.combine(x);
        let orig = x.combine(y);
        prop_assert_eq!(orig.max, swapped.max);
        prop_assert!((orig.total - swapped.total).abs() < 1e-9);
    }

    /// Termination detection declares termination on every rank iff the
    /// global send/receive counters balance.
    #[test]
    fn termination_iff_counters_balance(
        // Per-rank (sent, recv) counters; we then force balance or not.
        counters in prop::collection::vec((0u64..5, 0u64..5), 2..12),
        balance in any::<bool>(),
    ) {
        let n = counters.len();
        let mut counters = counters;
        // Force the global invariant recv <= sent (a receive implies a send).
        let sent: u64 = counters.iter().map(|c| c.0).sum();
        let recv: u64 = counters.iter().map(|c| c.1).sum();
        if recv > sent {
            counters[0].0 += recv - sent;
        }
        if balance {
            // Make totals equal by topping up rank 0's receive count.
            let sent: u64 = counters.iter().map(|c| c.0).sum();
            let recv: u64 = counters.iter().map(|c| c.1).sum();
            counters[0].1 += sent - recv;
        } else {
            // Ensure strict imbalance: one extra send, never received.
            counters[0].0 += 1;
        }

        let mut dets: Vec<TerminationDetector> = (0..n)
            .map(|r| {
                let mut d = TerminationDetector::new(RankId::from(r), n);
                d.start_epoch(1);
                for _ in 0..counters[r].0 { d.on_basic_send(); }
                for _ in 0..counters[r].1 { d.on_basic_recv(); }
                d
            })
            .collect();
        let mut queue: VecDeque<(usize, TdMsg)> = VecDeque::new();
        for s in dets[0].kick().sends {
            queue.push_back((s.to.as_usize(), s.msg));
        }
        let mut wave_guard = 0u64;
        while let Some((to, msg)) = queue.pop_front() {
            if let TdMsg::Token { wave, .. } = msg {
                wave_guard = wave;
                if wave > 6 {
                    break; // unbalanced: waves run forever by design
                }
            }
            for s in dets[to].handle(msg).sends {
                queue.push_back((s.to.as_usize(), s.msg));
            }
        }
        if balance {
            prop_assert!(dets.iter().all(|d| d.is_terminated()),
                "balanced counters must terminate");
        } else {
            prop_assert!(dets.iter().all(|d| !d.is_terminated()),
                "unbalanced counters must never terminate");
            prop_assert!(wave_guard > 6, "waves must keep circulating");
        }
    }
}

fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop::collection::vec(prop::collection::vec(0.05f64..3.0, 0..8), 2..10)
        .prop_map(Distribution::from_loads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full asynchronous protocol conserves tasks and load and never
    /// worsens the imbalance, for arbitrary inputs and seeds.
    #[test]
    fn async_protocol_is_safe(dist in arb_distribution(), seed in any::<u64>()) {
        let cfg = LbProtocolConfig {
            trials: 1,
            iters: 2,
            fanout: 2,
            rounds: 3,
            ..Default::default()
        };
        let out = run_distributed_lb(&dist, cfg, NetworkModel::default(), &RngFactory::new(seed));
        prop_assert_eq!(out.distribution.num_tasks(), dist.num_tasks());
        prop_assert!(out.distribution.total_load().approx_eq(dist.total_load()));
        prop_assert!(out.final_imbalance <= out.initial_imbalance + 1e-9);
        out.distribution.check_invariants().map_err(TestCaseError::fail)?;
    }
}
