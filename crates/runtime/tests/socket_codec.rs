//! Property tests of the TCP socket frame codec
//! ([`tempered_runtime::lb::FrameReader`] / `encode_frame`).
//!
//! The codec is the trust boundary of the socket driver: whatever the
//! peer's TCP stack hands us — whole frames, single bytes, several
//! frames glued together, bit-flipped payloads — the reader must either
//! reproduce the sender's `LbWire` exactly or surface a `Damaged` frame
//! that fails verification (which the reliable layer then treats as a
//! loss: dropped unacked, retransmitted by the sender).

use proptest::prelude::*;
use proptest::BoxedStrategy;
use rand::Rng;
use tempered_core::ids::{RankId, TaskId};
use tempered_runtime::collective::LoadSummary;
use tempered_runtime::lb::transport::{Reliable, RxEvent, Transport, TxAction};
use tempered_runtime::lb::{encode_frame, FrameReader, LbMsg, LbWire, TaskEntry};
use tempered_runtime::termination::TdMsg;
use tempered_runtime::RetryConfig;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Uniform choice among boxed strategies (the vendored proptest has no
/// `prop_oneof!`).
struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T: std::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut rand::rngs::SmallRng) -> Option<T> {
        let pick = rng.gen_range(0..self.0.len());
        self.0[pick].sample(rng)
    }
}

fn arb_rank() -> impl Strategy<Value = RankId> {
    (0u32..64).prop_map(RankId::new)
}

fn arb_task_entry() -> impl Strategy<Value = TaskEntry> {
    (any::<u64>(), 0.0f64..100.0, 0u32..64).prop_map(|(id, load, home)| TaskEntry {
        id: TaskId::new(id),
        load,
        home: RankId::new(home),
    })
}

fn arb_summary() -> impl Strategy<Value = LoadSummary> {
    (0.0f64..1e6, 0.0f64..1e4, 0u64..4096).prop_map(|(total, max, count)| LoadSummary {
        total,
        max,
        count,
    })
}

fn arb_msg() -> impl Strategy<Value = LbMsg> {
    OneOf(vec![
        (any::<u32>(), arb_summary())
            .prop_map(|(slot, summary)| LbMsg::ReduceUp { slot, summary })
            .boxed(),
        (any::<u32>(), arb_summary())
            .prop_map(|(slot, summary)| LbMsg::ReduceDown { slot, summary })
            .boxed(),
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec((arb_rank(), 0.0f64..100.0), 0..16),
        )
            .prop_map(
                |(epoch, round, pairs): (_, _, Vec<(RankId, f64)>)| LbMsg::Gossip {
                    epoch,
                    round,
                    pairs: pairs.into(),
                },
            )
            .boxed(),
        (any::<u64>(), prop::collection::vec(arb_task_entry(), 0..12))
            .prop_map(|(epoch, tasks)| LbMsg::Propose { epoch, tasks })
            .boxed(),
        (any::<u64>(), prop::collection::vec(arb_task_entry(), 0..12))
            .prop_map(|(epoch, rejected)| LbMsg::ProposeReply { epoch, rejected })
            .boxed(),
        (
            any::<u64>(),
            prop::collection::vec(any::<u64>().prop_map(TaskId::new), 0..24),
        )
            .prop_map(|(epoch, tasks)| LbMsg::Fetch { epoch, tasks })
            .boxed(),
        (
            any::<u64>(),
            prop::collection::vec(any::<u64>().prop_map(TaskId::new), 0..24),
        )
            .prop_map(|(epoch, tasks)| LbMsg::TaskData { epoch, tasks })
            .boxed(),
        (any::<u64>(), prop::collection::vec(arb_rank(), 0..16))
            .prop_map(|(base, dead)| LbMsg::View { base, dead })
            .boxed(),
        Just(LbMsg::Knock).boxed(),
        (any::<u64>(), prop::collection::vec(arb_rank(), 0..16))
            .prop_map(|(base, dead)| LbMsg::Heal { base, dead })
            .boxed(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(epoch, wave, sent, recv)| {
                LbMsg::Td(TdMsg::Token {
                    epoch,
                    wave,
                    sent,
                    recv,
                })
            })
            .boxed(),
    ])
}

fn arb_wire() -> impl Strategy<Value = LbWire> {
    OneOf(vec![
        arb_msg().prop_map(LbWire::Raw).boxed(),
        (1u64..1 << 48, arb_msg())
            .prop_map(|(seq, msg)| LbWire::Data { seq, msg })
            .boxed(),
        (1u64..1 << 48).prop_map(|seq| LbWire::Ack { seq }).boxed(),
        (arb_rank(), 1u64..1 << 48)
            .prop_map(|(to, seq)| LbWire::RetryTimer { to, seq })
            .boxed(),
        any::<u64>()
            .prop_map(|stage_seq| LbWire::StageTimer { stage_seq })
            .boxed(),
        Just(LbWire::Heartbeat).boxed(),
        Just(LbWire::HeartbeatTimer).boxed(),
        any::<u64>()
            .prop_map(|park_seq| LbWire::ParkTimer { park_seq })
            .boxed(),
    ])
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    /// A whole frame pushed at once comes back as the identical wire
    /// value, leaving no residue in the buffer.
    #[test]
    fn frame_roundtrips(wire in arb_wire()) {
        let mut reader = FrameReader::new();
        reader.push(&encode_frame(&wire));
        let got = reader.next_frame();
        prop_assert_eq!(got, Some(wire));
        prop_assert!(reader.next_frame().is_none());
        prop_assert_eq!(reader.pending(), 0);
    }

    /// TCP is a byte stream: several frames glued together and fed to
    /// the reader in arbitrary fixed-size chunks (down to one byte)
    /// reassemble into exactly the sent sequence.
    #[test]
    fn partial_reads_reassemble(
        wires in prop::collection::vec(arb_wire(), 1..5),
        chunk in 1usize..7,
    ) {
        let stream: Vec<u8> = wires.iter().flat_map(encode_frame).collect();
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.push(piece);
            while let Some(w) = reader.next_frame() {
                got.push(w);
            }
        }
        prop_assert_eq!(got, wires);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// Any single corrupted payload byte is caught by the CRC: the
    /// frame surfaces as `Damaged` (failing verification, so the rank
    /// drops it unacked), and the reader resynchronizes cleanly on the
    /// next frame.
    #[test]
    fn corrupt_payload_byte_is_caught_and_resyncs(
        wire in arb_wire(),
        follow in arb_wire(),
        pick in any::<prop::sample::Index>(),
        mask in (0u8..255).prop_map(|m| m + 1),
    ) {
        let mut bytes = encode_frame(&wire);
        // Corrupt strictly inside the payload region (after the 8-byte
        // len+crc header) — header corruption is a framing error, not a
        // checksum error, and is exercised elsewhere.
        let at = 8 + pick.index(bytes.len() - 8);
        bytes[at] ^= mask;
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        reader.push(&encode_frame(&follow));
        let first = reader.next_frame().expect("a frame must surface");
        prop_assert!(
            matches!(first, LbWire::Damaged { .. }) && !first.verify(),
            "single-byte corruption must surface as a failed check, got {:?}",
            first
        );
        let second = reader.next_frame();
        prop_assert_eq!(second, Some(follow));
        prop_assert!(reader.next_frame().is_none());
    }
}

// ---------------------------------------------------------------------------
// The loss-masking contract, end to end
// ---------------------------------------------------------------------------

/// A corrupted `Data` frame is dropped *unacked* — the receiver sends
/// nothing back — so the sender's retry timer retransmits and the clean
/// copy is delivered and acknowledged. Corruption is masked exactly
/// like loss, which is why the socket driver can map CRC failures to
/// `Damaged` and move on.
#[test]
fn corrupted_data_frames_are_dropped_unacked_and_redelivered() {
    let retry = RetryConfig::default();
    let me = RankId::new(0);
    let peer = RankId::new(1);
    let mut sender = Reliable::new(retry, 1000);
    let mut receiver = Reliable::new(retry, 1000);
    let msg = LbMsg::Gossip {
        epoch: 1,
        round: 1,
        pairs: vec![(me, 2.0)].into(),
    };

    let mut out = Vec::new();
    sender.send(peer, msg.clone(), &mut out);
    let data = out
        .iter()
        .find_map(|a| match a {
            TxAction::Wire { wire, .. } => Some(wire.clone()),
            _ => None,
        })
        .expect("reliable send emits a Data frame");
    let retry_timer = out
        .iter()
        .find_map(|a| match a {
            TxAction::Timer { wire, .. } => Some(wire.clone()),
            _ => None,
        })
        .expect("reliable send arms a retry timer");

    // The frame arrives corrupted: dropped, and — crucially — no ack.
    let mut rx_out = Vec::new();
    let event = receiver.receive(me, data.damaged(), &mut rx_out);
    assert!(matches!(event, RxEvent::Corrupt { from } if from == me));
    assert!(
        rx_out.is_empty(),
        "a corrupt frame must be dropped unacked, got {rx_out:?}"
    );

    // The sender's retry timer fires and retransmits the clean copy.
    let mut resend_out = Vec::new();
    let event = sender.receive(me, retry_timer, &mut resend_out);
    assert!(matches!(event, RxEvent::Retransmitted { to, .. } if to == peer));
    let resent = resend_out
        .iter()
        .find_map(|a| match a {
            TxAction::Wire { wire, .. } => Some(wire.clone()),
            _ => None,
        })
        .expect("retry fires a resend");
    assert_eq!(resent, data, "the resend is the identical Data frame");

    // The clean copy delivers and is acked; the ack settles the sender.
    let mut rx_out = Vec::new();
    let event = receiver.receive(me, resent, &mut rx_out);
    match event {
        RxEvent::Deliver(delivered) => assert_eq!(delivered, msg),
        other => panic!("clean resend must deliver, got {other:?}"),
    }
    let ack = rx_out
        .iter()
        .find_map(|a| match a {
            TxAction::Wire { wire, .. } => Some(wire.clone()),
            _ => None,
        })
        .expect("delivery acks");
    let event = sender.receive(peer, ack, &mut Vec::new());
    assert!(matches!(event, RxEvent::Nothing));

    assert_eq!(sender.stats().retransmitted, 1);
    assert_eq!(sender.stats().acked, 1);
    assert_eq!(receiver.stats().duplicates_suppressed, 0);
}
