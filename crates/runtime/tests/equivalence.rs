//! Sync ↔ async equivalence: the asynchronous protocol engine, driven by
//! the zero-latency in-process runner, must commit the *exact*
//! `Distribution` that the synchronous `tempered_core::refine` produces
//! for the same seed — bit-identical task placement and imbalance.
//!
//! This holds by construction: the engine calls the same algorithmic
//! kernels (`sample_fanout_targets`, `transfer_stage`) with the same
//! per-`(rank, stage, trial, iter)` RNG streams. Loads are restricted to
//! multiples of 0.25 so every partial sum the two sides compute in
//! different orders is exact in f64.

use proptest::prelude::*;
use tempered_core::distribution::Distribution;
use tempered_core::gossip::GossipConfig;
use tempered_core::ids::TaskId;
use tempered_core::refine::{refine, RefineConfig};
use tempered_core::rng::RngFactory;
use tempered_core::transfer::TransferConfig;
use tempered_runtime::lb::LbProtocolConfig;
use tempered_runtime::run_local_lb;

/// Canonical view of an assignment: per rank, sorted `(task id, load
/// bits)` pairs.
fn assignment(d: &Distribution) -> Vec<Vec<(TaskId, u64)>> {
    d.rank_ids()
        .map(|r| {
            let mut tasks: Vec<(TaskId, u64)> = d
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get().to_bits()))
                .collect();
            tasks.sort();
            tasks
        })
        .collect()
}

/// Assert the async engine (zero-latency driver) and the sync `refine`
/// agree bit-for-bit on the same input and seed.
fn assert_equivalent(dist: &Distribution, rcfg: &RefineConfig, seed: u64) {
    let factory = RngFactory::new(seed);
    let sync = refine(dist, rcfg, &factory, 0);
    let local = run_local_lb(dist, LbProtocolConfig::from(*rcfg), &factory);

    assert_eq!(local.degraded_ranks, 0);
    assert_eq!(
        assignment(&sync.best),
        assignment(&local.distribution),
        "engine committed a different assignment than refine (seed {seed})"
    );
    assert_eq!(
        sync.best_imbalance.to_bits(),
        local.final_imbalance.to_bits(),
        "agreed imbalance differs from refine's (seed {seed})"
    );
    assert_eq!(
        sync.initial_imbalance.to_bits(),
        local.initial_imbalance.to_bits()
    );
    assert_eq!(sync.migrations.len(), local.tasks_migrated);
}

/// Small TemperedLB-style configuration: multiple trials and iterations
/// exercise the trial-reset and best-tracking paths.
fn small_tempered() -> RefineConfig {
    RefineConfig {
        trials: 2,
        iters: 3,
        gossip: GossipConfig {
            fanout: 3,
            rounds: 4,
            ..Default::default()
        },
        transfer: TransferConfig::tempered(),
    }
}

/// Dyadic loads (multiples of 0.25) so float sums are order-independent.
fn dyadic_distribution() -> impl Strategy<Value = Distribution> {
    prop::collection::vec(
        prop::collection::vec((1u8..9).prop_map(|q| f64::from(q) * 0.25), 0..6),
        2..12,
    )
    .prop_filter("need at least one task", |ranks| {
        ranks.iter().any(|r| !r.is_empty())
    })
    .prop_map(Distribution::from_loads)
}

#[test]
fn tempered_engine_matches_refine_on_concentrated_load() {
    let loads: Vec<Vec<f64>> = (0..16)
        .map(|r| if r < 2 { vec![1.0; 24] } else { vec![1.0] })
        .collect();
    let dist = Distribution::from_loads(loads);
    for seed in 0..4 {
        assert_equivalent(&dist, &small_tempered(), seed);
    }
}

#[test]
fn grapevine_engine_matches_refine() {
    let loads: Vec<Vec<f64>> = (0..8)
        .map(|r| {
            if r == 0 {
                vec![0.5; 20]
            } else {
                vec![0.5, 0.25]
            }
        })
        .collect();
    let dist = Distribution::from_loads(loads);
    for seed in 0..4 {
        assert_equivalent(&dist, &RefineConfig::grapevine(), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random dyadic workloads, random seeds, TemperedLB config: the
    /// async engine's committed distribution is the one refine returns.
    #[test]
    fn tempered_equivalence_holds_for_random_workloads(
        dist in dyadic_distribution(),
        seed in any::<u64>(),
    ) {
        assert_equivalent(&dist, &small_tempered(), seed);
    }

    /// Same property under the original GrapevineLB configuration.
    #[test]
    fn grapevine_equivalence_holds_for_random_workloads(
        dist in dyadic_distribution(),
        seed in any::<u64>(),
    ) {
        assert_equivalent(&dist, &RefineConfig::grapevine(), seed);
    }
}
