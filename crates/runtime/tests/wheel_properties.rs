//! Property tests for `tempered_runtime::wheel`: over arbitrary
//! interleavings of pushes and pops, the timer wheel releases events in
//! exactly the order the displaced `BinaryHeap<Reverse<…>>` event queues
//! did — ascending `(time, push sequence)` with `f64::total_cmp` on the
//! time — including pushes that land behind the drain cursor, on slot
//! collisions, and past the near horizon into the far pool.

use proptest::prelude::*;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use tempered_runtime::wheel::TimerWheel;

/// Reference model: the exact shape the simulator used before the wheel —
/// a min-heap of `(time, seq)`-ordered entries with a caller-side push
/// counter as the FIFO tie-break.
struct HeapEntry {
    time: f64,
    seq: u64,
    id: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Schedule an event at this time (seconds).
    Push(f64),
    /// Pop up to this many events.
    Pop(usize),
}

/// Exact-value palette → guaranteed duplicate times (FIFO tie-break).
const TIMES: [f64; 7] = [0.0, 1.0e-6, 1.5e-6, 2.55e-4, 2.56e-4, 1.0e-2, 1.0];

/// Op mix forcing every wheel path: exact ties, same-quantum near
/// misses, slot collisions one revolution apart (k × 256 quanta at the
/// 1 µs quantum used below), far-pool times, and interleaved pops (which
/// exercise the behind-cursor merge-insert on later pushes).
fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..5, 0u64..12, 0.0f64..3.0e-3).prop_map(|(sel, k, t)| match sel {
            // A quarter of ops are pops of 1–7 events.
            0 => Op::Pop((k as usize % 7) + 1),
            // Duplicate exact times from the palette.
            1 => Op::Push(TIMES[(k % 7) as usize]),
            // Same-slot-different-tick collisions: k_hi revolutions out.
            2 => Op::Push(((k % 4) + 256 * (k / 4)) as f64 * 1.0e-6),
            // Arbitrary times across the near horizon and far pool.
            _ => Op::Push(t),
        }),
        1..120,
    )
}

proptest! {
    /// Wheel and heap agree on every popped `(time, id)` — mid-program
    /// (pops interleaved with pushes exercise the behind-cursor
    /// merge-insert) and on the final drain.
    #[test]
    fn wheel_pops_in_heap_order(ops in ops_strategy()) {
        // 1 µs quantum, the simulator's configuration for its default
        // base latency (scale is ticks per second).
        let mut wheel: TimerWheel<f64, usize> = TimerWheel::new(1.0 / 1.0e-6);
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut next_id = 0usize;

        for op in ops {
            match op {
                Op::Push(t) => {
                    wheel.push(t, next_id);
                    heap.push(Reverse(HeapEntry { time: t, seq, id: next_id }));
                    seq += 1;
                    next_id += 1;
                }
                Op::Pop(n) => {
                    for _ in 0..n {
                        let got = wheel.pop();
                        let want = heap.pop().map(|Reverse(e)| (e.time, e.id));
                        match (got, want) {
                            (None, None) => break,
                            (got, want) => prop_assert_eq!(got, want),
                        }
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }

        // Drain: the tail must come out identically too.
        while let Some(Reverse(e)) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some((e.time, e.id)));
        }
        prop_assert_eq!(wheel.pop(), None);
        prop_assert!(wheel.is_empty());
    }
}
