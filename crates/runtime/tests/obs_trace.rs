//! Golden trace test: the Chrome trace exported from a tiny 4-rank
//! simulated LB run must be byte-stable — two runs with the same
//! (input, config, seed) produce *identical* `trace.json` bytes, and the
//! export round-trips through the trace reader into the same records.
//!
//! This is the determinism contract of the observability layer: virtual
//! time stamps, ring-buffer ordering, metric maps, and the JSON writer
//! are all deterministic, so a trace diff is a behavior diff.

use tempered_core::distribution::Distribution;
use tempered_core::rng::RngFactory;
use tempered_obs::{cost_breakdown, read_chrome_trace, to_records, write_chrome_trace, Recorder};
use tempered_runtime::lb::LbProtocolConfig;
use tempered_runtime::sim::NetworkModel;
use tempered_runtime::{run_distributed_lb_traced, FaultPlan};

const SEED: u64 = 77;

fn four_rank_input() -> Distribution {
    Distribution::from_loads(vec![
        vec![3.0, 2.0, 1.5, 1.0, 0.5],
        vec![0.25, 0.25],
        vec![],
        vec![],
    ])
}

fn cfg() -> LbProtocolConfig {
    LbProtocolConfig {
        trials: 1,
        iters: 2,
        fanout: 2,
        rounds: 3,
        ..Default::default()
    }
}

/// One traced fault-free run; returns the exported trace JSON.
fn traced_run_json() -> String {
    let recorder = Recorder::enabled(4);
    let out = run_distributed_lb_traced(
        &four_rank_input(),
        cfg(),
        NetworkModel::default(),
        &RngFactory::new(SEED),
        FaultPlan::none(),
        recorder.clone(),
    );
    assert_eq!(out.degraded_ranks, 0, "fault-free run must not degrade");
    let trace = recorder.snapshot();
    assert_eq!(trace.dropped_events, 0, "tiny run must fit the ring");
    write_chrome_trace(&trace)
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_run_json();
    let b = traced_run_json();
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

#[test]
fn different_seeds_give_different_traces() {
    let a = traced_run_json();
    let recorder = Recorder::enabled(4);
    run_distributed_lb_traced(
        &four_rank_input(),
        cfg(),
        NetworkModel::default(),
        &RngFactory::new(SEED + 1),
        FaultPlan::none(),
        recorder.clone(),
    );
    let b = write_chrome_trace(&recorder.snapshot());
    assert_ne!(a, b, "the trace must reflect the run, not just its shape");
}

#[test]
fn trace_round_trips_through_the_reader() {
    let recorder = Recorder::enabled(4);
    run_distributed_lb_traced(
        &four_rank_input(),
        cfg(),
        NetworkModel::default(),
        &RngFactory::new(SEED),
        FaultPlan::none(),
        recorder.clone(),
    );
    let trace = recorder.snapshot();
    let json = write_chrome_trace(&trace);
    let parsed = read_chrome_trace(&json).expect("our own trace must parse");
    assert_eq!(parsed, to_records(&trace), "reader must invert the writer");
}

#[test]
fn trace_contains_the_protocol_stages() {
    let json = traced_run_json();
    let records = read_chrome_trace(&json).expect("parse");
    let b = cost_breakdown(&records);
    let groups: Vec<&str> = b.rows.iter().map(|r| r.group.as_str()).collect();
    for expected in [
        "lb:setup",
        "gossip_rounds",
        "lb:proposals",
        "lb:evaluate",
        "lb:commit",
    ] {
        assert!(
            groups.contains(&expected),
            "breakdown missing {expected}: {groups:?}"
        );
    }
    assert!(b.lb_total_s() > 0.0);
    assert!(b.instant_count("epoch_terminated") > 0);
    assert_eq!(b.num_ranks, 4);
}
