//! EMPIRE B-Dot surrogate: run the plasma workload under the paper's
//! configurations and print the Fig. 3-style breakdown plus imbalance
//! traces.
//!
//! Run with: `cargo run --release --example empire_bdot`
//! (a reduced-scale scenario so it finishes in seconds; the full
//! paper-scale harness is `cargo run --release -p tempered-bench --bin
//! fig2_overall`).

use tempered_lb::prelude::*;

fn main() {
    let scenario = BdotScenario::small();
    println!(
        "B-Dot surrogate: {} ranks, x{} overdecomposition, {} steps",
        scenario.mesh.num_ranks(),
        scenario.mesh.colors_per_rank(),
        scenario.steps
    );
    println!();

    let modes = [
        ExecutionMode::Spmd,
        ExecutionMode::Amt(LbStrategy::None),
        ExecutionMode::Amt(LbStrategy::Grapevine),
        ExecutionMode::Amt(LbStrategy::Greedy),
        ExecutionMode::Amt(LbStrategy::Tempered(OrderingKind::FewestMigrations)),
    ];

    let mut timelines: Vec<Timeline> = Vec::new();
    for mode in modes {
        let mut cfg = TimelineConfig::new(scenario, mode, 7);
        cfg.lb_period = 30;
        cfg.tempered_trials = 4;
        cfg.tempered_iters = 6;
        timelines.push(run_timeline(&cfg));
    }

    // Fig. 3-style breakdown.
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "configuration", "t_n", "t_p", "t_lb", "t_total", "speedup"
    );
    println!("{}", "-".repeat(80));
    let spmd_total = timelines[0].t_total();
    for t in &timelines {
        println!(
            "{:<34} {:>8.2} {:>8.2} {:>8.3} {:>9.2} {:>8.2}x",
            t.label,
            t.t_n,
            t.t_p,
            t.t_lb,
            t.t_total(),
            spmd_total / t.t_total()
        );
    }

    // Imbalance trace (Fig. 4c flavor) at a few checkpoints.
    println!();
    println!("imbalance I over time:");
    print!("{:<34}", "configuration");
    let checkpoints: Vec<usize> = (0..scenario.steps).step_by(scenario.steps / 6).collect();
    for c in &checkpoints {
        print!(" {c:>7}");
    }
    println!();
    println!("{}", "-".repeat(34 + 8 * checkpoints.len()));
    for t in &timelines {
        print!("{:<34}", t.label);
        for &c in &checkpoints {
            print!(" {:>7.2}", t.steps[c].imbalance);
        }
        println!();
    }

    println!();
    println!("Balanced configurations keep I near 0 between LB invocations while");
    println!("the unbalanced runs track the plasma's spatial concentration.");
}
