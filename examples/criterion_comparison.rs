//! §V-B vs §V-D: the original GrapevineLB transfer criterion against the
//! paper's relaxed (provably optimal) criterion, on the concentrated
//! layout family.
//!
//! Run with: `cargo run --release --example criterion_comparison`
//! (uses the scaled-down layout; the full 2¹²-rank experiment is
//! `cargo run --release -p tempered-bench --bin table_vb` / `table_vd`).

use tempered_lb::lbaf::{
    comparison_table, run_criterion_experiment, CriterionExperiment, CriterionVariant,
};

fn main() {
    let cfg = CriterionExperiment::small();
    println!(
        "layout: {} tasks on {} of {} ranks; k={}, f={}, h={}, {} iterations",
        cfg.layout.num_tasks,
        cfg.layout.populated_ranks,
        cfg.layout.num_ranks,
        cfg.rounds,
        cfg.fanout,
        cfg.threshold_h,
        cfg.iters,
    );
    println!();

    let original = run_criterion_experiment(&cfg, CriterionVariant::Original);
    let relaxed = run_criterion_experiment(&cfg, CriterionVariant::Relaxed);

    println!("{}", original.to_table().render());
    println!("{}", relaxed.to_table().render());
    println!("{}", comparison_table(&original, &relaxed).render());

    let io = original.rows.last().unwrap().imbalance;
    let ir = relaxed.rows.last().unwrap().imbalance;
    println!("final imbalance: original {io:.3} vs relaxed {ir:.3}");
    println!("The original criterion traps refinement in a local minimum (rejection");
    println!("rates climb to ~100% while I plateaus); the relaxed criterion keeps");
    println!("accepting the transfers that monotonically reduce the objective F.");
}
