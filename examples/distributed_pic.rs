//! The PIC application running *as a distributed protocol* on the
//! simulated AMT runtime: replicated injection, home-routed particle
//! exchange, per-step stats allreduces, embedded asynchronous TemperedLB,
//! and real particle migration — the full vt-style execution the paper's
//! EMPIRE uses, at laptop scale.
//!
//! Run with: `cargo run --release --example distributed_pic`

use tempered_lb::empire::{run_distributed_pic, BdotScenario, CostModel, DistPicConfig};
use tempered_lb::prelude::*;

fn main() {
    let mut scenario = BdotScenario::small();
    scenario.steps = 60;
    let cfg = DistPicConfig {
        scenario,
        cost: CostModel::default(),
        lb: LbProtocolConfig {
            trials: 2,
            iters: 4,
            fanout: 4,
            rounds: 5,
            ..Default::default()
        },
        lb_first_step: 4,
        lb_period: 20,
    };

    println!(
        "distributed PIC: {} ranks, x{} overdecomposition, {} steps, LB at 4 then every 20",
        cfg.scenario.mesh.num_ranks(),
        cfg.scenario.mesh.colors_per_rank(),
        cfg.scenario.steps
    );

    let balanced = run_distributed_pic(cfg, NetworkModel::default(), 2021);
    let mut no_lb = cfg;
    no_lb.lb_first_step = usize::MAX;
    let unbalanced = run_distributed_pic(no_lb, NetworkModel::default(), 2021);

    println!();
    println!(
        "{:>5} {:>12} {:>12} {:>12}",
        "step", "I (no LB)", "I (LB)", "particles"
    );
    println!("{}", "-".repeat(46));
    for s in (0..cfg.scenario.steps).step_by(6) {
        println!(
            "{:>5} {:>12.3} {:>12.3} {:>12}",
            s,
            unbalanced.stats[s].imbalance,
            balanced.stats[s].imbalance,
            balanced.stats[s].num_particles
        );
    }

    println!();
    println!("colors migrated       : {}", balanced.colors_migrated);
    println!(
        "protocol messages     : {} ({:.1} KiB)",
        balanced.report.network.messages,
        balanced.report.network.bytes as f64 / 1024.0
    );
    println!(
        "modeled protocol time : {:.2} ms over the simulated interconnect",
        balanced.report.finish_time * 1e3
    );
    println!();
    println!("Every global effect here was a message: particles crossing color");
    println!("boundaries routed through mesh-home location managers, per-step");
    println!("stats via tree allreduce, the balancer embedded as a sub-protocol,");
    println!("and task payloads fetched lazily from previous owners.");
}
