//! Quickstart: balance a badly skewed task distribution with TemperedLB
//! and compare against the paper's baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use tempered_lb::prelude::*;

fn main() {
    // 64 ranks; all work initially piled onto 4 of them, with
    // heterogeneous task loads — the shape of a plasma burst landing in
    // one corner of a decomposed domain.
    let mut per_rank: Vec<Vec<f64>> = Vec::new();
    for r in 0..4 {
        per_rank.push(
            (0..100)
                .map(|i| 0.5 + ((r * 100 + i) % 10) as f64 * 0.1)
                .collect(),
        );
    }
    per_rank.resize(64, vec![]);
    let dist = Distribution::from_loads(per_rank);
    let stats = dist.statistics();

    println!("initial state:");
    println!("  ranks            : {}", dist.num_ranks());
    println!("  tasks            : {}", dist.num_tasks());
    println!("  max rank load    : {:.2}", stats.max.get());
    println!("  avg rank load    : {:.2}", stats.average.get());
    println!(
        "  imbalance I      : {:.2}   (Eq. 1: l_max/l_ave - 1)",
        stats.imbalance
    );
    println!(
        "  lower bound      : {:.2}   (max(l_ave, biggest task))",
        lower_bound_max_load(stats.average, dist.max_task_load()).get()
    );
    println!();

    let factory = RngFactory::new(2021);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "balancer", "final I", "migrations", "messages", "max load"
    );
    println!("{}", "-".repeat(64));

    // The paper's strategies, distributed to centralized.
    let mut tempered = TemperedLb::default();
    let mut grapevine = GrapevineLb::default();
    let mut hier = HierLb::default();
    let mut greedy = GreedyLb;
    let balancers: Vec<&mut dyn LoadBalancer> =
        vec![&mut tempered, &mut grapevine, &mut hier, &mut greedy];

    for lb in balancers {
        let name = lb.name();
        let r = lb.rebalance(&dist, &factory, 0);
        println!(
            "{:<14} {:>12.3} {:>12} {:>12} {:>10.2}",
            name,
            r.final_imbalance,
            r.migrations.len(),
            r.messages_sent,
            r.distribution.max_load().get(),
        );
    }

    println!();
    println!("TemperedLB reaches GreedyLB-class balance with no centralized");
    println!("gather: only gossip messages and the ranks that actually trade");
    println!("tasks are involved.");
}
