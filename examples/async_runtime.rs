//! The asynchronous, message-driven TemperedLB protocol on the simulated
//! AMT runtime: collectives, barrier-free gossip sequenced by wave-based
//! termination detection, lazy transfer proposals, and lazy migration —
//! on both the deterministic event-driven executor and the
//! multi-threaded executor.
//!
//! Run with: `cargo run --release --example async_runtime`

use std::time::Duration;
use tempered_lb::prelude::*;
use tempered_lb::runtime::lb::LbRank;
use tempered_lb::runtime::parallel::run_parallel;

fn concentrated(num_ranks: usize, hot: usize, tasks_per_hot: usize) -> Distribution {
    let per_rank: Vec<Vec<f64>> = (0..num_ranks)
        .map(|r| {
            if r < hot {
                vec![1.0; tasks_per_hot]
            } else {
                vec![]
            }
        })
        .collect();
    Distribution::from_loads(per_rank)
}

fn main() {
    let dist = concentrated(64, 4, 60);
    let cfg = LbProtocolConfig {
        trials: 3,
        iters: 5,
        fanout: 4,
        rounds: 6,
        ..Default::default()
    };
    let factory = RngFactory::new(99);

    println!(
        "input: {} ranks, {} tasks, I = {:.2}",
        dist.num_ranks(),
        dist.num_tasks(),
        dist.imbalance()
    );
    println!();

    // --- Deterministic event-driven executor -----------------------------
    let out = run_distributed_lb(&dist, cfg, NetworkModel::default(), &factory);
    println!("event-driven executor (virtual EDR-class interconnect):");
    println!("  final imbalance   : {:.3}", out.final_imbalance);
    println!("  tasks migrated    : {}", out.tasks_migrated);
    println!("  protocol messages : {}", out.report.network.messages);
    println!(
        "  protocol volume   : {:.1} KiB",
        out.report.network.bytes as f64 / 1024.0
    );
    println!(
        "  virtual time      : {:.3} ms (modeled protocol makespan)",
        out.report.finish_time * 1e3
    );
    println!("  per-iteration imbalance (trial 0):");
    for r in out.records.iter().filter(|r| r.trial == 0) {
        println!("    iter {:>2}: I = {:.3}", r.iteration, r.imbalance);
    }
    println!();

    // --- Multi-threaded executor ------------------------------------------
    // The same protocol actors under real concurrency: termination
    // detection and epoch buffering must hold under arbitrary message
    // interleavings.
    let ranks: Vec<LbRank> = dist
        .rank_ids()
        .map(|r| {
            let tasks: Vec<(TaskId, f64)> = dist
                .tasks_on(r)
                .iter()
                .map(|t| (t.id, t.load.get()))
                .collect();
            LbRank::new(r, dist.num_ranks(), tasks, cfg, factory)
        })
        .collect();
    let report = run_parallel(ranks, 8, Duration::from_secs(30));
    assert!(report.completed, "threaded run must terminate");
    let max_load: f64 = report
        .ranks
        .iter()
        .map(|r| r.final_tasks().iter().map(|t| t.load).sum::<f64>())
        .fold(0.0, f64::max);
    let avg = dist.total_load().get() / dist.num_ranks() as f64;
    println!("multi-threaded executor (8 workers, real concurrency):");
    println!("  final imbalance   : {:.3}", max_load / avg - 1.0);
    println!("  protocol messages : {}", report.network.messages);
    let total_tasks: usize = report.ranks.iter().map(|r| r.final_tasks().len()).sum();
    println!("  tasks conserved   : {total_tasks} / {}", dist.num_tasks());
}
