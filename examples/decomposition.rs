//! Fig. 1 as ASCII art: SPMD decomposition, overdecomposition into
//! colors, and the post-LB color-to-rank assignment for a small mesh with
//! a concentrated particle burst.
//!
//! Run with: `cargo run --release --example decomposition`

use tempered_lb::empire::{BdotScenario, CostModel, EmpireSim};
use tempered_lb::prelude::*;

fn main() {
    let mut scenario = BdotScenario::small();
    scenario.steps = 30;
    let mesh = scenario.mesh;
    let mut sim = EmpireSim::new(scenario, CostModel::default(), 5);
    for _ in 0..30 {
        sim.step();
    }

    let (gx, gy) = mesh.color_grid();
    println!(
        "mesh: {}x{} ranks, {}x{} colors per rank (overdecomposition x{})",
        mesh.ranks_x,
        mesh.ranks_y,
        mesh.colors_x,
        mesh.colors_y,
        mesh.colors_per_rank()
    );
    println!();

    // (a) SPMD decomposition: each cell shows its home rank.
    println!("(a) SPMD decomposition (home rank of each color):");
    for cy in (0..gy).rev() {
        let mut line = String::new();
        for cx in 0..gx {
            let c = tempered_lb::empire::ColorId::from_grid(&mesh, cx, cy);
            line.push_str(&format!("{:>3}", mesh.home_rank(c).as_u32()));
        }
        println!("  {line}");
    }
    println!();

    // (b) Overdecomposition: per-color particle load after the burst.
    println!("(b) per-color load after 30 steps ('.' empty → '#' hottest):");
    let max_load = mesh
        .colors()
        .map(|c| sim.distribution.load_of(c.task_id()).unwrap().get())
        .fold(0.0f64, f64::max);
    let shades = [b'.', b':', b'-', b'=', b'+', b'*', b'%', b'#'];
    for cy in (0..gy).rev() {
        let mut line = String::new();
        for cx in 0..gx {
            let c = tempered_lb::empire::ColorId::from_grid(&mesh, cx, cy);
            let l = sim.distribution.load_of(c.task_id()).unwrap().get();
            let shade = if max_load == 0.0 {
                0
            } else {
                ((l / max_load) * (shades.len() - 1) as f64).round() as usize
            };
            line.push(shades[shade] as char);
            line.push(' ');
        }
        println!("  {line}");
    }
    println!();

    // (c) Post-LB assignment: colors remapped off the hot ranks.
    let before = sim.distribution.imbalance();
    let mut lb = TemperedLb::default();
    lb.config.trials = 3;
    lb.config.iters = 6;
    let result = lb.rebalance(&sim.distribution, sim.factory(), 0);
    println!(
        "(c) color-to-rank assignment after TemperedLB (I: {:.2} → {:.2}, {} colors moved):",
        before,
        result.final_imbalance,
        result.migrations.len()
    );
    for cy in (0..gy).rev() {
        let mut line = String::new();
        for cx in 0..gx {
            let c = tempered_lb::empire::ColorId::from_grid(&mesh, cx, cy);
            let rank = result.distribution.location_of(c.task_id()).unwrap();
            let moved = rank != mesh.home_rank(c);
            if moved {
                line.push_str(&format!("[{:>2}]", rank.as_u32()));
            } else {
                line.push_str(&format!(" {:>2} ", rank.as_u32()));
            }
        }
        println!("  {line}");
    }
    println!();
    println!("  [NN] marks colors migrated away from their home rank: the hot");
    println!("  central colors spread to the idle corner ranks.");
}
