//! # tempered-lb
//!
//! Facade crate for the TemperedLB reproduction — *"Optimizing
//! Distributed Load Balancing for Workloads with Time-Varying Imbalance"*
//! (Lifflander et al., IEEE CLUSTER 2021) — re-exporting the four
//! subsystem crates:
//!
//! * [`core`] (`tempered-core`) — the balancing algorithms: gossip,
//!   transfer criteria/CMFs/orderings, iterative refinement, and the
//!   GrapevineLB / TemperedLB / GreedyLB / HierLB strategies.
//! * [`runtime`] (`tempered-runtime`) — the simulated AMT substrate:
//!   event-driven and multi-threaded executors, termination detection,
//!   collectives, and the asynchronous message-driven LB protocol.
//! * [`empire`] (`empire-pic`) — the EMPIRE-like particle-in-cell
//!   surrogate that induces the paper's time-varying imbalance, plus the
//!   timeline harness behind Figs. 2–4.
//! * [`lbaf`] — the analysis framework behind the §V-B/§V-D tables and
//!   the design-space sweeps.
//!
//! ## Quick start
//!
//! ```
//! use tempered_lb::prelude::*;
//!
//! // Pile work onto one of 8 ranks, then balance it.
//! let mut per_rank = vec![vec![1.0f64; 32]];
//! per_rank.resize(8, vec![]);
//! let dist = Distribution::from_loads(per_rank);
//!
//! let mut lb = TemperedLb::default();
//! let result = lb.rebalance(&dist, &RngFactory::new(1), 0);
//! assert!(result.final_imbalance < dist.imbalance());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper.

#![warn(missing_docs)]

pub mod cli;

pub use empire_pic as empire;
pub use lbaf;
pub use tempered_core as core;
pub use tempered_runtime as runtime;

/// One-stop imports for applications.
pub mod prelude {
    pub use empire_pic::{
        run_timeline, BdotScenario, CostModel, EmpireSim, ExecutionMode, LbStrategy, Mesh,
        Timeline, TimelineConfig,
    };
    pub use tempered_core::prelude::*;
    pub use tempered_runtime::{
        run_distributed_lb, DistributedTemperedLb, LbProtocolConfig, NetworkModel,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let dist = Distribution::from_loads(vec![vec![2.0, 2.0], vec![]]);
        let mut lb = GreedyLb;
        let r = lb.rebalance(&dist, &RngFactory::new(0), 0);
        assert_eq!(r.final_imbalance, 0.0);
    }
}
