//! `tempered` — balance a task-to-rank assignment from the command line.
//!
//! ```text
//! tempered --input loads.csv --balancer tempered --migrations plan.csv
//! ```
//!
//! See `tempered --help` (or [`tempered_lb::cli::USAGE`]).

use std::process::ExitCode;
use tempered_lb::cli;

fn main() -> ExitCode {
    let opts = match cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            // --help lands here too; it is not an error for the shell.
            let is_help = msg.starts_with("tempered —");
            eprintln!("{msg}");
            return if is_help {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let input_text = match &opts.input {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    match cli::run(&opts, input_text.as_deref()) {
        Ok((report, migrations)) => {
            print!("{report}");
            match &opts.migrations_out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &migrations) {
                        eprintln!("error: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("migration plan  : {path}");
                }
                None => {
                    println!("\nmigration plan:\n{migrations}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
