//! Implementation of the `tempered` command-line tool.
//!
//! The binary (`src/bin/tempered.rs`) is a thin wrapper around this
//! module so every piece — argument parsing, CSV I/O, balancer dispatch —
//! is unit-testable. The tool balances a task-to-rank assignment given as
//! CSV (`rank,task,load` per line, `#` comments allowed) and emits the
//! resulting statistics plus an optional migration plan CSV
//! (`task,from,to,load`).

use crate::prelude::*;
use std::fmt::Write as _;

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct CliOptions {
    /// Input CSV path, or `None` to use the built-in demo workload.
    pub input: Option<String>,
    /// Balancer selection.
    pub balancer: BalancerChoice,
    /// TemperedLB trials.
    pub trials: usize,
    /// TemperedLB iterations.
    pub iters: usize,
    /// Master seed.
    pub seed: u64,
    /// Total ranks; `0` = infer as `max rank id + 1`.
    pub num_ranks: usize,
    /// Where to write the migration plan CSV (stdout section if `None`).
    pub migrations_out: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            input: None,
            balancer: BalancerChoice::Tempered,
            trials: 10,
            iters: 8,
            seed: 0,
            num_ranks: 0,
            migrations_out: None,
        }
    }
}

/// Which balancer the CLI runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerChoice {
    /// TemperedLB (default).
    Tempered,
    /// Original GrapevineLB.
    Grapevine,
    /// Centralized greedy.
    Greedy,
    /// Hierarchical.
    Hier,
}

impl BalancerChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "tempered" | "temperedlb" => Ok(BalancerChoice::Tempered),
            "grapevine" | "grapevinelb" => Ok(BalancerChoice::Grapevine),
            "greedy" | "greedylb" => Ok(BalancerChoice::Greedy),
            "hier" | "hierlb" | "hierarchical" => Ok(BalancerChoice::Hier),
            other => Err(format!(
                "unknown balancer '{other}' (expected tempered|grapevine|greedy|hier)"
            )),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
tempered — distributed gossip load balancing (TemperedLB reproduction)

USAGE:
    tempered [OPTIONS]

OPTIONS:
    --input <FILE>        CSV of `rank,task,load` rows (default: demo workload)
    --balancer <NAME>     tempered | grapevine | greedy | hier  [default: tempered]
    --trials <N>          TemperedLB trials                     [default: 10]
    --iters <N>           TemperedLB iterations per trial       [default: 8]
    --ranks <N>           total ranks (default: max rank id + 1)
    --seed <N>            master seed                           [default: 0]
    --migrations <FILE>   write the migration plan CSV here
    --help                print this text
";

/// Parse CLI arguments (excluding argv[0]).
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = CliOptions::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        let mut value = |name: &str| {
            it.next()
                .map(|v| v.as_ref().to_string())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg {
            "--input" => opts.input = Some(value("--input")?),
            "--balancer" => opts.balancer = BalancerChoice::parse(&value("--balancer")?)?,
            "--trials" => {
                opts.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?
            }
            "--iters" => {
                opts.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--ranks" => {
                opts.num_ranks = value("--ranks")?
                    .parse()
                    .map_err(|e| format!("--ranks: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--migrations" => opts.migrations_out = Some(value("--migrations")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    if opts.trials == 0 || opts.iters == 0 {
        return Err("--trials and --iters must be at least 1".into());
    }
    Ok(opts)
}

/// Parse a `rank,task,load` CSV into a [`Distribution`].
///
/// Lines starting with `#`, blank lines, and a `rank,task,load` header
/// are ignored. `num_ranks = 0` infers the rank count.
pub fn parse_loads_csv(text: &str, num_ranks: usize) -> Result<Distribution, String> {
    let mut rows: Vec<(u32, u64, f64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(format!("line {}: expected 3 fields", lineno + 1));
        }
        if lineno == 0 && fields[0].eq_ignore_ascii_case("rank") {
            continue; // header
        }
        let rank: u32 = fields[0]
            .parse()
            .map_err(|e| format!("line {}: rank: {e}", lineno + 1))?;
        let task: u64 = fields[1]
            .parse()
            .map_err(|e| format!("line {}: task: {e}", lineno + 1))?;
        let load: f64 = fields[2]
            .parse()
            .map_err(|e| format!("line {}: load: {e}", lineno + 1))?;
        if !load.is_finite() || load < 0.0 {
            return Err(format!("line {}: load must be finite and >= 0", lineno + 1));
        }
        rows.push((rank, task, load));
    }
    if rows.is_empty() {
        return Err("no task rows found".into());
    }
    let inferred = rows.iter().map(|r| r.0 as usize + 1).max().unwrap();
    let n = if num_ranks == 0 {
        inferred
    } else if num_ranks < inferred {
        return Err(format!(
            "--ranks {num_ranks} is smaller than the largest rank id + 1 ({inferred})"
        ));
    } else {
        num_ranks
    };
    let mut dist = Distribution::new(n);
    for (rank, task, load) in rows {
        dist.insert(RankId::new(rank), Task::new(task, load))
            .map_err(|e| format!("task {task}: {e}"))?;
    }
    Ok(dist)
}

/// Render a migration plan as `task,from,to,load` CSV.
pub fn migrations_csv(migrations: &[Migration]) -> String {
    let mut out = String::from("task,from,to,load\n");
    for m in migrations {
        let _ = writeln!(out, "{},{},{},{}", m.task, m.from, m.to, m.load.get());
    }
    out
}

/// The built-in demo workload: 256 tasks concentrated on 4 of 32 ranks.
pub fn demo_distribution(seed: u64) -> Distribution {
    let factory = RngFactory::new(seed);
    use rand::Rng;
    let mut rng = factory.rank_stream(b"cli-demo", 0, 0);
    let mut dist = Distribution::new(32);
    for task in 0..256u64 {
        let rank = RankId::new((task % 4) as u32);
        let load = 0.25 + rng.gen::<f64>();
        dist.insert(rank, Task::new(task, load)).unwrap();
    }
    dist
}

/// Run the tool: returns the human-readable report and the migration CSV.
pub fn run(opts: &CliOptions, input_text: Option<&str>) -> Result<(String, String), String> {
    let dist = match input_text {
        Some(text) => parse_loads_csv(text, opts.num_ranks)?,
        None => demo_distribution(opts.seed),
    };
    let factory = RngFactory::new(opts.seed);

    let mut tempered = TemperedLb::new(TemperedConfig {
        trials: opts.trials,
        iters: opts.iters,
        ..TemperedConfig::default()
    });
    let mut grapevine = GrapevineLb::default();
    let mut greedy = GreedyLb;
    let mut hier = HierLb::default();
    let lb: &mut dyn LoadBalancer = match opts.balancer {
        BalancerChoice::Tempered => &mut tempered,
        BalancerChoice::Grapevine => &mut grapevine,
        BalancerChoice::Greedy => &mut greedy,
        BalancerChoice::Hier => &mut hier,
    };

    let name = lb.name();
    let before = dist.statistics();
    let result = lb.rebalance(&dist, &factory, 0);
    let after = result.distribution.statistics();

    let mut report = String::new();
    let _ = writeln!(report, "balancer        : {name}");
    let _ = writeln!(
        report,
        "ranks / tasks   : {} / {}",
        dist.num_ranks(),
        dist.num_tasks()
    );
    let _ = writeln!(
        report,
        "max rank load   : {:.4} -> {:.4}",
        before.max.get(),
        after.max.get()
    );
    let _ = writeln!(
        report,
        "imbalance I     : {:.4} -> {:.4}",
        before.imbalance, after.imbalance
    );
    let _ = writeln!(
        report,
        "lower bound     : {:.4}",
        lower_bound_max_load(before.average, dist.max_task_load()).get()
    );
    let _ = writeln!(report, "migrations      : {}", result.migrations.len());
    let _ = writeln!(report, "protocol msgs   : {}", result.messages_sent);

    Ok((report, migrations_csv(&result.migrations)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_flags() {
        let opts = parse_args(Vec::<&str>::new()).unwrap();
        assert_eq!(opts, CliOptions::default());

        let opts = parse_args([
            "--balancer",
            "greedy",
            "--trials",
            "3",
            "--iters",
            "2",
            "--seed",
            "9",
            "--ranks",
            "64",
            "--input",
            "x.csv",
            "--migrations",
            "plan.csv",
        ])
        .unwrap();
        assert_eq!(opts.balancer, BalancerChoice::Greedy);
        assert_eq!(opts.trials, 3);
        assert_eq!(opts.iters, 2);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.num_ranks, 64);
        assert_eq!(opts.input.as_deref(), Some("x.csv"));
        assert_eq!(opts.migrations_out.as_deref(), Some("plan.csv"));
    }

    #[test]
    fn rejects_bad_args() {
        assert!(parse_args(["--balancer", "magic"]).is_err());
        assert!(parse_args(["--trials"]).is_err());
        assert!(parse_args(["--trials", "0"]).is_err());
        assert!(parse_args(["--frobnicate"]).is_err());
        let help = parse_args(["--help"]).unwrap_err();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn csv_roundtrip_with_header_and_comments() {
        let text = "rank,task,load\n# hot rank\n0,0,2.0\n0,1,1.5\n1,2,0.5\n\n";
        let dist = parse_loads_csv(text, 0).unwrap();
        assert_eq!(dist.num_ranks(), 2);
        assert_eq!(dist.num_tasks(), 3);
        assert_eq!(dist.rank_load(RankId::new(0)).get(), 3.5);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(parse_loads_csv("", 0).is_err());
        assert!(parse_loads_csv("1,2", 0).is_err());
        assert!(parse_loads_csv("a,b,c", 0).is_err());
        assert!(parse_loads_csv("0,0,-1.0", 0).is_err());
        assert!(parse_loads_csv("0,0,inf", 0).is_err());
        // Duplicate task id.
        assert!(parse_loads_csv("0,7,1.0\n1,7,1.0", 0).is_err());
        // Explicit rank count too small.
        assert!(parse_loads_csv("5,0,1.0", 3).is_err());
    }

    #[test]
    fn explicit_rank_count_adds_empty_ranks() {
        let dist = parse_loads_csv("0,0,1.0", 16).unwrap();
        assert_eq!(dist.num_ranks(), 16);
    }

    #[test]
    fn run_demo_improves_imbalance() {
        let opts = CliOptions {
            trials: 2,
            iters: 4,
            ..CliOptions::default()
        };
        let (report, csv) = run(&opts, None).unwrap();
        assert!(report.contains("TemperedLB"));
        assert!(csv.lines().count() > 1, "demo must produce migrations");
        // The report shows a before -> after imbalance drop.
        let line = report.lines().find(|l| l.starts_with("imbalance")).unwrap();
        let nums: Vec<f64> = line
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert!(nums[0] > nums[1], "imbalance must drop: {line}");
    }

    #[test]
    fn run_on_csv_input_with_each_balancer() {
        let text = "0,0,3.0\n0,1,2.0\n0,2,1.0\n1,3,0.5\n";
        for balancer in [
            BalancerChoice::Tempered,
            BalancerChoice::Grapevine,
            BalancerChoice::Greedy,
            BalancerChoice::Hier,
        ] {
            let opts = CliOptions {
                balancer,
                trials: 2,
                iters: 3,
                num_ranks: 8,
                ..CliOptions::default()
            };
            let (report, _) = run(&opts, Some(text)).unwrap();
            assert!(report.contains("ranks / tasks   : 8 / 4"), "{report}");
        }
    }

    #[test]
    fn migrations_csv_format() {
        let m = Migration {
            task: TaskId::new(3),
            from: RankId::new(1),
            to: RankId::new(2),
            load: Load::new(0.5),
        };
        let csv = migrations_csv(&[m]);
        assert_eq!(csv, "task,from,to,load\n3,1,2,0.5\n");
    }
}
